"""Execution-driven discrete-event simulation kernel.

This is the Python counterpart of the SPASM framework used by the paper:
application threads execute for real (they are generator coroutines that
compute real values), and every shared-memory access traps into the
simulated memory system, which decides how much simulated time the access
costs and how the cycles are categorised.

Scheduling is conservative: the engine always resumes the runnable thread
with the smallest local clock, so operations are *issued* in global
simulated-time order.  For data-race-free applications (the paper's
assumption) this guarantees that the values observed by the Python-level
execution are the values the simulated machine would observe.

Hot-path structure (see docs/architecture.md for the full design):

* The ready queue is an :class:`repro.sim.wheel.EventWheel` — a calendar
  queue with per-epoch heaps that preserves the exact ``(time, seq,
  tid)`` lexicographic order of the original global ``heapq`` while
  keeping each heap operation at its constant-time floor as machines and
  event populations grow.  Stale entries (a thread re-pushed or woken)
  are lazily discarded on pop, exactly as before.

* Run-ahead fast path: once a thread is resumed, the fused scheduler
  loop in :meth:`Engine.run` executes its consecutive ops *without
  re-entering the scheduler* for as long as the thread's clock does not
  pass the cached horizon (the earliest pending queue entry).  The
  horizon is maintained incrementally — set on every pop, min-updated
  on every push — so the common op costs one float compare instead of a
  heap peek.  Run-ahead
  deliberately never *pre-executes* ops past the horizon: pulling the
  next op out of a generator runs real application code (e.g. the store
  that follows a ``yield Write``), so peeking early would publish
  Python-level values at the wrong simulated time.  Within-horizon
  batching is the maximal safe run-ahead for execution-driven threads.
"""

from __future__ import annotations

import gc
from collections.abc import Generator, Iterable
from heapq import heappush, heappushpop
from typing import Protocol

from ..config import MachineConfig
from .events import (
    Acquire,
    BarrierWait,
    Compute,
    Fence,
    FlagSet,
    FlagWait,
    Op,
    Phase,
    Read,
    ReadNB,
    Release,
    SelfInvalidate,
    Stall,
    Write,
)
from .stats import AccessResult, ProcStats, SimResult, SyncPoint
from .wheel import EventWheel

_INF = float("inf")


class MemorySystemProtocol(Protocol):
    """What the engine requires of a memory system model.

    ``sync`` carries the identity of the synchronisation operation that
    triggered an ``acquire``/``release`` (which lock, barrier episode,
    ...); memory systems may ignore it, but tracers use it to attribute
    sync events (see :class:`repro.sim.trace.TracingMemory`).
    """

    def read(self, proc: int, addr: int, now: float) -> AccessResult: ...

    def write(self, proc: int, addr: int, now: float) -> AccessResult: ...

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult: ...

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult: ...


class SyncManagerProtocol(Protocol):
    """What the engine requires of a synchronisation manager."""

    def bind(self, engine: "Engine") -> None: ...

    def acquire(self, proc: int, lock_id: int, now: float) -> float | None: ...

    def release(self, proc: int, lock_id: int, now: float) -> float: ...

    def barrier_wait(self, proc: int, barrier_id: int, now: float) -> float | None: ...


class DeadlockError(RuntimeError):
    """Raised when no thread is runnable but some threads are blocked."""


class _Thread:
    __slots__ = (
        "tid", "gen", "time", "stats", "blocked", "block_time", "done", "feedback",
    )

    def __init__(self, tid: int, gen: Generator[Op, None, None]):
        self.tid = tid
        self.gen = gen
        self.time = 0.0
        self.stats = ProcStats()
        self.blocked = False
        self.block_time = 0.0
        self.done = False
        #: Fed into the generator at the next resume: the thread's clock
        #: as a bare float (common case — no tuple allocation per op),
        #: ``(time, AccessResult)`` after a ``ReadNB``, or None to prime
        #: a fresh generator / resume after a blocking sync op.
        self.feedback: float | tuple[float, object] | None = None


class Engine:
    """Conservative time-ordered scheduler for simulated SPMD threads.

    One thread runs per simulated processor; thread id equals processor
    id.  Use :meth:`spawn` to install the workers, then :meth:`run`.
    """

    def __init__(
        self,
        config: MachineConfig,
        memsys: MemorySystemProtocol,
        syncmgr: SyncManagerProtocol,
        max_ops: int | None = None,
    ):
        self.config = config
        self.memsys = memsys
        self.syncmgr = syncmgr
        self.max_ops = max_ops
        #: Optional :class:`repro.obs.metrics.MetricsCollector`-style
        #: observer.  When None (the default) the only cost is one
        #: attribute load per resumed thread; when set, the engine calls
        #: ``on_busy``/``on_access``/``on_stall``/``on_sync_wait`` with
        #: exact per-category cycle accounting so interval metrics can
        #: reproduce :class:`SimResult` totals to the last cycle.
        self.observer = None
        #: Optional :class:`repro.obs.profile.HostProfiler`.  When None
        #: (the default) the cost is one attribute check per *run*, not
        #: per op — the hot loop below is untouched and results are
        #: bit-identical.  When set, :meth:`run` delegates to the
        #: profiled twin loop in :mod:`repro.obs.profile`.
        self.profiler = None
        #: CPU-side degradation (per-node slowdown factors and the burst
        #: schedule) from ``config.degradation``.  None — the common case
        #: — keeps the Compute branch on a single pointer check; the
        #: memory/network axes are consumed by the memory system and the
        #: routed network, not here.
        deg = config.degradation
        self._degrade = deg if deg is not None and deg.affects_cpu else None
        self._threads: dict[int, _Thread] = {}
        self._queue = EventWheel()
        self._ops_executed = 0
        #: Earliest pending queue entry time — the run-ahead horizon.
        #: Maintained incrementally: run() refreshes it after each pop,
        #: _push() min-updates it, so _run_thread's inner loop never
        #: touches the queue to decide whether it may keep running.
        self._horizon = _INF
        # Episode accessors are optional on the sync manager (test fakes
        # may not provide them); without them sync events are tagged with
        # episode 0, which only degrades trace attribution.
        self._lock_episode = getattr(syncmgr, "lock_episode", lambda _lock_id: 0)
        self._barrier_episode = getattr(syncmgr, "barrier_episode", lambda _barrier_id: 0)
        self._flag_epoch = getattr(syncmgr, "flag_epoch", lambda _flag_id: 0)
        syncmgr.bind(self)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def spawn(self, tid: int, gen: Generator[Op, None, None]) -> None:
        """Install generator ``gen`` as the thread for processor ``tid``."""
        if tid in self._threads:
            raise ValueError(f"thread {tid} already spawned")
        if not 0 <= tid < self.config.nprocs:
            raise ValueError(
                f"thread id {tid} outside processor range 0..{self.config.nprocs - 1}"
            )
        thread = _Thread(tid, gen)
        self._threads[tid] = thread
        self._push(thread)

    def spawn_all(self, gens: Iterable[Generator[Op, None, None]]) -> None:
        for tid, gen in enumerate(gens):
            self.spawn(tid, gen)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        """Number of pending ready-queue entries (observability probe)."""
        return len(self._queue)

    def _push(self, thread: _Thread) -> None:
        time = thread.time
        self._queue.push(time, thread.tid)
        if time < self._horizon:
            self._horizon = time

    def wake(self, tid: int, grant_time: float) -> None:
        """Unblock thread ``tid``; it resumes at ``grant_time``.

        The interval between the moment the thread blocked and
        ``grant_time`` is accounted as synchronisation wait.
        """
        thread = self._threads[tid]
        if not thread.blocked:
            raise RuntimeError(f"wake() on non-blocked thread {tid}")
        thread.blocked = False
        wait = max(0.0, grant_time - thread.block_time)
        thread.stats.sync_wait += wait
        obs = self.observer
        if obs is not None and wait > 0.0:
            obs.on_sync_wait(tid, thread.block_time, wait)
        thread.time = max(thread.time, grant_time)
        self._push(thread)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Run all threads to completion and return the statistics.

        The scheduler loop and the per-thread op loop are fused into one
        frame: engine-wide constants (memory system entry points, sync
        manager, op budget) become locals once per *run*, per-segment
        state (generator send, stats, clock, feedback) once per
        scheduling segment.  At small P a segment is only one or two ops
        long, so a per-segment function call plus prologue was as hot as
        the per-op work itself.  The stall-decomposition arithmetic of
        the old ``_charge`` helper is inlined with the *identical* float
        operation order, so results are bit-for-bit those of the
        original heap-based loop (pinned by tests/test_engine_equivalence.py).

        The run-ahead horizon lives in the local ``hz``: only sync
        operations can wake another thread (the only way the earliest
        pending time can move down mid-segment), so ``hz`` is refreshed
        from ``self._horizon`` after those and nowhere else.
        """
        if self.profiler is not None:
            # Host self-profiling: same schedule, same float-operation
            # order, perf marks at component boundaries.  Imported
            # lazily so the simulator core never depends on obs.
            from ..obs.profile import run_profiled

            return run_profiled(self, self.profiler)
        threads = self._threads
        # Hot-loop thread lookup is a list index (tids are dense 0..P-1).
        tlist: list[_Thread | None] = [None] * self.config.nprocs
        for th in threads.values():
            tlist[th.tid] = th
        queue = self._queue
        pop_and_peek = queue.pop_and_peek
        memsys = self.memsys
        mem_read = memsys.read
        mem_write = memsys.write
        syncmgr = self.syncmgr
        max_ops = self.max_ops
        ops_limit = max_ops if max_ops is not None else _INF
        ops = self._ops_executed
        obs = self.observer
        # Flyweight identity of the memory system's stall-free hit
        # result (None when the system is wrapped by a tracer/checker,
        # which disables the shortcut but changes nothing else): a result
        # that *is* this object carries zero stalls by construction, so
        # the stall decomposition below collapses to a busy charge.
        hit_res = getattr(memsys, "_hit_result", None)
        lock_episode = self._lock_episode
        barrier_episode = self._barrier_episode
        flag_epoch = self._flag_epoch
        # CPU degradation, hoisted to locals for the Compute branch.
        deg = self._degrade
        if deg is not None:
            cpu_f = deg.cpu_factors(self.config.nprocs)
            burst_period = deg.burst_period
            burst_len = burst_period * deg.burst_duty
            burst_factor = deg.burst_factor
            burst_phase = deg.burst_phase
        else:
            cpu_f = []
            burst_period = burst_len = burst_phase = 0.0
            burst_factor = 1.0
        # The hot loop allocates heavily (feedback tuples, results,
        # queue entries) but creates no reference cycles that must be
        # reclaimed mid-run; generation-0 collections were a measurable
        # fraction of wall time, so cycle detection pauses until the run
        # completes.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
          # Every segment-exit site below assigns the next (entry,
          # horizon) itself — the push-exit via the fused
          # push_pop_peek(), the no-push exits (block, finish) via a
          # plain pop_and_peek() — so the loop never pops twice.
          entry, horizon = pop_and_peek()
          while True:
            if entry is None:
                break
            time, _seq, tid = entry
            thread = tlist[tid]
            if thread.done or thread.blocked or thread.time != time:
                # stale queue entry (thread was re-pushed or woken)
                entry, horizon = pop_and_peek()
                continue
            self._horizon = hz = horizon
            send = thread.gen.send
            stats = thread.stats
            t = thread.time
            fb = thread.feedback
            while True:
                try:
                    op = send(fb)
                except StopIteration:
                    thread.done = True
                    thread.time = t
                    stats.finish_time = t
                    entry, horizon = pop_and_peek()
                    break
                ops += 1
                if ops > ops_limit:
                    raise RuntimeError(
                        f"operation budget exceeded ({self.max_ops}); "
                        "likely runaway application loop"
                    )
                cls = op.__class__
                now = t
                fb = None
                if cls is Read:
                    res = mem_read(tid, op.addr, now)
                    stats.reads += 1
                    if res is hit_res:
                        # Stall-free hit: the flyweight carries zero in
                        # every stall category, so the decomposition
                        # below reduces to charging the elapsed cycles
                        # as busy (bit-identical: x + 0.0 == x for the
                        # non-negative accumulators involved).
                        stats.read_hits += 1
                        rt = res.time
                        busy = rt - now
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and busy > 0.0:
                            obs.on_access(tid, now, rt, 0.0, 0.0, 0.0, busy)
                    else:
                        if res.hit:
                            stats.read_hits += 1
                        else:
                            stats.read_misses += 1
                        rt = res.time
                        elapsed = rt - now
                        if elapsed < -1e-9:
                            raise RuntimeError(
                                f"memory system returned completion {rt} before issue {now}"
                            )
                        rs = res.read_stall
                        ws = res.write_stall
                        bf = res.buffer_flush
                        stalls = rs + ws + bf
                        stats.read_stall += rs
                        stats.write_stall += ws
                        stats.buffer_flush += bf
                        busy = elapsed - stalls
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and elapsed > 0.0:
                            obs.on_access(tid, now, rt, rs, ws, bf, busy)
                elif cls is Compute:
                    cycles = op.cycles
                    if deg is not None:
                        # Per-node slowdown plus the phase-shifted burst
                        # schedule (rectangular wave: the first
                        # burst_len cycles of each period, node n's wave
                        # shifted by n * burst_phase).  Factors of 1.0
                        # multiply bit-identically.
                        f = cpu_f[tid]
                        if (
                            burst_period > 0.0
                            and (now + tid * burst_phase) % burst_period < burst_len
                        ):
                            f *= burst_factor
                        cycles = cycles * f
                    stats.busy += cycles
                    t = now + cycles
                    if obs is not None and cycles > 0.0:
                        obs.on_busy(tid, now, cycles)
                elif cls is Write:
                    res = mem_write(tid, op.addr, now)
                    stats.writes += 1
                    if res is hit_res:
                        rt = res.time
                        busy = rt - now
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and busy > 0.0:
                            obs.on_access(tid, now, rt, 0.0, 0.0, 0.0, busy)
                    else:
                        rt = res.time
                        elapsed = rt - now
                        if elapsed < -1e-9:
                            raise RuntimeError(
                                f"memory system returned completion {rt} before issue {now}"
                            )
                        rs = res.read_stall
                        ws = res.write_stall
                        bf = res.buffer_flush
                        stalls = rs + ws + bf
                        stats.read_stall += rs
                        stats.write_stall += ws
                        stats.buffer_flush += bf
                        busy = elapsed - stalls
                        if busy <= 0.0:
                            busy = 0.0
                        stats.busy += busy
                        t = rt
                        if obs is not None and elapsed > 0.0:
                            obs.on_access(tid, now, rt, rs, ws, bf, busy)
                elif cls is Acquire:
                    sync = SyncPoint("lock", op.lock_id, lock_episode(op.lock_id))
                    res = memsys.acquire(tid, now, sync)
                    t = self._charge(stats, tid, now, res)
                    stats.acquires += 1
                    grant = syncmgr.acquire(tid, op.lock_id, t)
                    if grant is None:
                        thread.blocked = True
                        thread.block_time = t
                        thread.time = t
                        thread.feedback = None
                        entry, horizon = pop_and_peek()
                        break
                    # max()-free wait accounting: += 0.0 is an identity
                    # on the non-negative sync_wait accumulator, so the
                    # no-wait case can skip the arithmetic entirely.
                    wait = grant - t
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, t, wait)
                        t = grant
                    hz = self._horizon
                elif cls is Release:
                    sync = SyncPoint("lock", op.lock_id, lock_episode(op.lock_id))
                    res = memsys.release(tid, now, sync)
                    t = self._charge(stats, tid, now, res)
                    stats.releases += 1
                    done = syncmgr.release(tid, op.lock_id, t)
                    wait = done - t
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, t, wait)
                        t = done
                    hz = self._horizon
                elif cls is BarrierWait:
                    sync = SyncPoint(
                        "barrier", op.barrier_id, barrier_episode(op.barrier_id)
                    )
                    res = memsys.release(tid, now, sync)
                    t = self._charge(stats, tid, now, res)
                    stats.barriers += 1
                    depart = syncmgr.barrier_wait(tid, op.barrier_id, t)
                    if depart is None:
                        thread.blocked = True
                        thread.block_time = t
                        thread.time = t
                        thread.feedback = None
                        entry, horizon = pop_and_peek()
                        break
                    wait = depart - t
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, t, wait)
                        t = depart
                    hz = self._horizon
                elif cls is Fence:
                    res = memsys.release(tid, now, SyncPoint("fence", -1))
                    t = self._charge(stats, tid, now, res)
                    stats.fences += 1
                elif cls is ReadNB:
                    res = mem_read(tid, op.addr, now)
                    stats.reads += 1
                    if res.hit:
                        stats.read_hits += 1
                    else:
                        stats.read_misses += 1
                    # Non-blocking: the processor only pays the issue cost;
                    # the caller sees the full AccessResult and manages the
                    # remaining latency itself.  Copy the result: memory
                    # systems may reuse a flyweight for stall-free hits,
                    # but this one outlives the call (the application
                    # holds it until the value is consumed).
                    issue = self.config.cache_hit_cycles
                    stats.busy += issue
                    t = now + issue
                    if obs is not None and issue > 0.0:
                        obs.on_busy(tid, now, issue)
                    fb = (
                        t,
                        AccessResult(
                            res.time, res.read_stall, res.write_stall,
                            res.buffer_flush, res.hit,
                        ),
                    )
                elif cls is FlagSet:
                    note = getattr(memsys, "sync_note", None)
                    if note is not None:
                        # The epoch this set establishes is the current one + 1.
                        note(
                            tid,
                            now,
                            SyncPoint("flag_set", op.flag_id, flag_epoch(op.flag_id) + 1),
                        )
                    proceed, data_ready = memsys.publish(tid, op.blocks, now)
                    done = syncmgr.flag_set(tid, op.flag_id, proceed, data_ready)
                    busy = done - now
                    if busy > 0.0:
                        stats.busy += busy
                        if obs is not None:
                            obs.on_busy(tid, now, busy)
                        t = done
                    hz = self._horizon
                elif cls is FlagWait:
                    note = getattr(memsys, "sync_note", None)
                    if note is not None:
                        note(tid, now, SyncPoint("flag_wait", op.flag_id, op.epoch))
                    depart = syncmgr.flag_wait(tid, op.flag_id, op.epoch, now)
                    if depart is None:
                        thread.blocked = True
                        thread.block_time = t
                        thread.time = t
                        thread.feedback = None
                        entry, horizon = pop_and_peek()
                        break
                    wait = depart - now
                    if wait > 0.0:
                        stats.sync_wait += wait
                        if obs is not None:
                            obs.on_sync_wait(tid, now, wait)
                        t = depart
                    hz = self._horizon
                elif cls is SelfInvalidate:
                    memsys.self_invalidate(tid, op.blocks, now)
                    cost = len(op.blocks) * 1.0
                    stats.busy += cost
                    t = now + cost
                    if obs is not None and cost > 0.0:
                        obs.on_busy(tid, now, cost)
                elif cls is Stall:
                    cycles = op.cycles
                    category = op.category
                    if category == "read":
                        stats.read_stall += cycles
                    elif category == "write":
                        stats.write_stall += cycles
                    elif category == "flush":
                        stats.buffer_flush += cycles
                    else:
                        stats.sync_wait += cycles
                    t = now + cycles
                    if obs is not None and cycles > 0.0:
                        obs.on_stall(tid, now, cycles, category)
                elif cls is Phase:
                    # Zero simulated cycles: purely an observability marker.
                    note = getattr(memsys, "phase_note", None)
                    if note is not None:
                        note(tid, now, op.label)
                    if obs is not None:
                        obs.on_phase(tid, now, op.label)
                else:
                    raise TypeError(f"thread {tid} yielded non-Op {op!r}")
                if fb is None:
                    fb = t
                # Run-ahead check: keep executing while our clock has not
                # passed the earliest pending entry.  The horizon can only
                # move *down* during this segment (a sync op above may
                # have woken a thread at an earlier time — the branches
                # that can refresh ``hz`` right after), so one float
                # compare replaces the per-op heap peek.
                if t > hz:
                    thread.time = t
                    thread.feedback = fb
                    # Fused re-queue + schedule: push this thread's entry
                    # and pop the next runnable one in a single heap
                    # operation.  No horizon min-update is needed on the
                    # push side (t already exceeds the horizon).  This is
                    # EventWheel.push_pop_peek inlined (keep in lockstep
                    # with it): the same-epoch no-cancellation case — the
                    # overwhelmingly common one — costs a C heappushpop;
                    # epoch transitions fall back to the wheel's methods.
                    seq = queue._seq + 1
                    queue._seq = seq
                    if queue._lo <= t < queue._hi:
                        bucket = queue._cur_bucket
                        if bucket and not queue._cancelled:
                            entry = heappushpop(bucket, (t, seq, tid))
                            horizon = bucket[0][0]
                            break
                        heappush(bucket, (t, seq, tid))
                    else:
                        queue._push_slow(t, seq, tid)
                    queue._pending += 1
                    entry, horizon = pop_and_peek()
                    break
        finally:
            self._ops_executed = ops
            if gc_was_enabled:
                gc.enable()
        blocked = [th.tid for th in threads.values() if th.blocked]
        unfinished = [th.tid for th in threads.values() if not th.done]
        if blocked:
            raise DeadlockError(
                f"simulation deadlocked: threads {blocked} blocked, "
                f"threads {unfinished} unfinished"
            )
        total = max((th.stats.finish_time for th in threads.values()), default=0.0)
        procs = [threads[tid].stats for tid in sorted(threads)]
        return SimResult(total_time=total, procs=procs, ops=ops)

    def _charge(self, stats: ProcStats, tid: int, now: float, res: AccessResult) -> float:
        """Bucket the elapsed cycles of a sync-op access; return its completion time.

        Data reads/writes inline this arithmetic in :meth:`run`'s op
        loop; keep the two in lockstep (same operations, same order).
        """
        elapsed = res.time - now
        if elapsed < -1e-9:
            raise RuntimeError(
                f"memory system returned completion {res.time} before issue {now}"
            )
        stalls = res.read_stall + res.write_stall + res.buffer_flush
        stats.read_stall += res.read_stall
        stats.write_stall += res.write_stall
        stats.buffer_flush += res.buffer_flush
        # Whatever the stall categories do not claim is pipeline/busy time
        # (e.g. the one-cycle cache-hit cost).
        busy = max(0.0, elapsed - stalls)
        stats.busy += busy
        obs = self.observer
        if obs is not None and elapsed > 0.0:
            obs.on_access(
                tid, now, res.time,
                res.read_stall, res.write_stall, res.buffer_flush, busy,
            )
        return res.time
