"""Execution-driven discrete-event simulation kernel.

This is the Python counterpart of the SPASM framework used by the paper:
application threads execute for real (they are generator coroutines that
compute real values), and every shared-memory access traps into the
simulated memory system, which decides how much simulated time the access
costs and how the cycles are categorised.

Scheduling is conservative: the engine always resumes the runnable thread
with the smallest local clock, so operations are *issued* in global
simulated-time order.  For data-race-free applications (the paper's
assumption) this guarantees that the values observed by the Python-level
execution are the values the simulated machine would observe.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Protocol

from ..config import MachineConfig
from .events import (
    Acquire,
    BarrierWait,
    Compute,
    Fence,
    FlagSet,
    FlagWait,
    Op,
    Phase,
    Read,
    ReadNB,
    Release,
    SelfInvalidate,
    Stall,
    Write,
)
from .stats import AccessResult, ProcStats, SimResult, SyncPoint


class MemorySystemProtocol(Protocol):
    """What the engine requires of a memory system model.

    ``sync`` carries the identity of the synchronisation operation that
    triggered an ``acquire``/``release`` (which lock, barrier episode,
    ...); memory systems may ignore it, but tracers use it to attribute
    sync events (see :class:`repro.sim.trace.TracingMemory`).
    """

    def read(self, proc: int, addr: int, now: float) -> AccessResult: ...

    def write(self, proc: int, addr: int, now: float) -> AccessResult: ...

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult: ...

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult: ...


class SyncManagerProtocol(Protocol):
    """What the engine requires of a synchronisation manager."""

    def bind(self, engine: "Engine") -> None: ...

    def acquire(self, proc: int, lock_id: int, now: float) -> float | None: ...

    def release(self, proc: int, lock_id: int, now: float) -> float: ...

    def barrier_wait(self, proc: int, barrier_id: int, now: float) -> float | None: ...


class DeadlockError(RuntimeError):
    """Raised when no thread is runnable but some threads are blocked."""


class _Thread:
    __slots__ = (
        "tid", "gen", "time", "stats", "blocked", "block_time", "done", "feedback",
    )

    def __init__(self, tid: int, gen: Generator[Op, None, None]):
        self.tid = tid
        self.gen = gen
        self.time = 0.0
        self.stats = ProcStats()
        self.blocked = False
        self.block_time = 0.0
        self.done = False
        #: (time, AccessResult | None) fed into the generator at the next
        #: resume; None primes a fresh generator.
        self.feedback: tuple[float, object] | None = None


class Engine:
    """Conservative time-ordered scheduler for simulated SPMD threads.

    One thread runs per simulated processor; thread id equals processor
    id.  Use :meth:`spawn` to install the workers, then :meth:`run`.
    """

    def __init__(
        self,
        config: MachineConfig,
        memsys: MemorySystemProtocol,
        syncmgr: SyncManagerProtocol,
        max_ops: int | None = None,
    ):
        self.config = config
        self.memsys = memsys
        self.syncmgr = syncmgr
        self.max_ops = max_ops
        #: Optional :class:`repro.obs.metrics.MetricsCollector`-style
        #: observer.  When None (the default) the only cost is one
        #: attribute load per resumed thread; when set, the engine calls
        #: ``on_busy``/``on_access``/``on_stall``/``on_sync_wait`` with
        #: exact per-category cycle accounting so interval metrics can
        #: reproduce :class:`SimResult` totals to the last cycle.
        self.observer = None
        self._threads: dict[int, _Thread] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._ops_executed = 0
        # Episode accessors are optional on the sync manager (test fakes
        # may not provide them); without them sync events are tagged with
        # episode 0, which only degrades trace attribution.
        self._lock_episode = getattr(syncmgr, "lock_episode", lambda _lock_id: 0)
        self._barrier_episode = getattr(syncmgr, "barrier_episode", lambda _barrier_id: 0)
        self._flag_epoch = getattr(syncmgr, "flag_epoch", lambda _flag_id: 0)
        syncmgr.bind(self)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def spawn(self, tid: int, gen: Generator[Op, None, None]) -> None:
        """Install generator ``gen`` as the thread for processor ``tid``."""
        if tid in self._threads:
            raise ValueError(f"thread {tid} already spawned")
        if not 0 <= tid < self.config.nprocs:
            raise ValueError(
                f"thread id {tid} outside processor range 0..{self.config.nprocs - 1}"
            )
        thread = _Thread(tid, gen)
        self._threads[tid] = thread
        self._push(thread)

    def spawn_all(self, gens: Iterable[Generator[Op, None, None]]) -> None:
        for tid, gen in enumerate(gens):
            self.spawn(tid, gen)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def _push(self, thread: _Thread) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (thread.time, self._seq, thread.tid))

    def wake(self, tid: int, grant_time: float) -> None:
        """Unblock thread ``tid``; it resumes at ``grant_time``.

        The interval between the moment the thread blocked and
        ``grant_time`` is accounted as synchronisation wait.
        """
        thread = self._threads[tid]
        if not thread.blocked:
            raise RuntimeError(f"wake() on non-blocked thread {tid}")
        thread.blocked = False
        wait = max(0.0, grant_time - thread.block_time)
        thread.stats.sync_wait += wait
        obs = self.observer
        if obs is not None and wait > 0.0:
            obs.on_sync_wait(tid, thread.block_time, wait)
        thread.time = max(thread.time, grant_time)
        self._push(thread)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Run all threads to completion and return the statistics."""
        while self._heap:
            time, seq, tid = heapq.heappop(self._heap)
            thread = self._threads[tid]
            if thread.done or thread.blocked or thread.time != time:
                # stale heap entry (thread was re-pushed or woken)
                continue
            self._run_thread(thread)
        blocked = [t.tid for t in self._threads.values() if t.blocked]
        unfinished = [t.tid for t in self._threads.values() if not t.done]
        if blocked:
            raise DeadlockError(
                f"simulation deadlocked: threads {blocked} blocked, "
                f"threads {unfinished} unfinished"
            )
        total = max((t.stats.finish_time for t in self._threads.values()), default=0.0)
        procs = [self._threads[tid].stats for tid in sorted(self._threads)]
        return SimResult(total_time=total, procs=procs, ops=self._ops_executed)

    def _run_thread(self, thread: _Thread) -> None:
        """Resume ``thread``, executing ops while it holds the global min clock."""
        gen = thread.gen
        stats = thread.stats
        obs = self.observer
        while True:
            try:
                op = gen.send(thread.feedback)
            except StopIteration:
                thread.done = True
                stats.finish_time = thread.time
                return
            self._ops_executed += 1
            if self.max_ops is not None and self._ops_executed > self.max_ops:
                raise RuntimeError(
                    f"operation budget exceeded ({self.max_ops}); "
                    "likely runaway application loop"
                )
            cls = op.__class__
            now = thread.time
            thread.feedback = None
            if cls is Compute:
                stats.busy += op.cycles
                thread.time = now + op.cycles
                if obs is not None and op.cycles > 0.0:
                    obs.on_busy(thread.tid, now, op.cycles)
            elif cls is Read:
                res = self.memsys.read(thread.tid, op.addr, now)
                stats.reads += 1
                if res.hit:
                    stats.read_hits += 1
                else:
                    stats.read_misses += 1
                self._charge(stats, thread, now, res)
            elif cls is Write:
                res = self.memsys.write(thread.tid, op.addr, now)
                stats.writes += 1
                self._charge(stats, thread, now, res)
            elif cls is Acquire:
                sync = SyncPoint("lock", op.lock_id, self._lock_episode(op.lock_id))
                res = self.memsys.acquire(thread.tid, now, sync)
                self._charge(stats, thread, now, res)
                stats.acquires += 1
                grant = self.syncmgr.acquire(thread.tid, op.lock_id, thread.time)
                if grant is None:
                    self._block(thread)
                    return
                wait = max(0.0, grant - thread.time)
                stats.sync_wait += wait
                if obs is not None and wait > 0.0:
                    obs.on_sync_wait(thread.tid, thread.time, wait)
                thread.time = max(thread.time, grant)
            elif cls is Release:
                sync = SyncPoint("lock", op.lock_id, self._lock_episode(op.lock_id))
                res = self.memsys.release(thread.tid, now, sync)
                self._charge(stats, thread, now, res)
                stats.releases += 1
                done = self.syncmgr.release(thread.tid, op.lock_id, thread.time)
                wait = max(0.0, done - thread.time)
                stats.sync_wait += wait
                if obs is not None and wait > 0.0:
                    obs.on_sync_wait(thread.tid, thread.time, wait)
                thread.time = max(thread.time, done)
            elif cls is BarrierWait:
                sync = SyncPoint(
                    "barrier", op.barrier_id, self._barrier_episode(op.barrier_id)
                )
                res = self.memsys.release(thread.tid, now, sync)
                self._charge(stats, thread, now, res)
                stats.barriers += 1
                depart = self.syncmgr.barrier_wait(thread.tid, op.barrier_id, thread.time)
                if depart is None:
                    self._block(thread)
                    return
                wait = max(0.0, depart - thread.time)
                stats.sync_wait += wait
                if obs is not None and wait > 0.0:
                    obs.on_sync_wait(thread.tid, thread.time, wait)
                thread.time = max(thread.time, depart)
            elif cls is Fence:
                res = self.memsys.release(thread.tid, now, SyncPoint("fence", -1))
                self._charge(stats, thread, now, res)
                stats.fences += 1
            elif cls is ReadNB:
                res = self.memsys.read(thread.tid, op.addr, now)
                stats.reads += 1
                if res.hit:
                    stats.read_hits += 1
                else:
                    stats.read_misses += 1
                # Non-blocking: the processor only pays the issue cost;
                # the caller sees the full AccessResult and manages the
                # remaining latency itself.
                issue = self.config.cache_hit_cycles
                stats.busy += issue
                thread.time = now + issue
                if obs is not None and issue > 0.0:
                    obs.on_busy(thread.tid, now, issue)
                thread.feedback = (thread.time, res)
            elif cls is FlagSet:
                note = getattr(self.memsys, "sync_note", None)
                if note is not None:
                    # The epoch this set establishes is the current one + 1.
                    note(
                        thread.tid,
                        now,
                        SyncPoint("flag_set", op.flag_id, self._flag_epoch(op.flag_id) + 1),
                    )
                proceed, data_ready = self.memsys.publish(thread.tid, op.blocks, now)
                done = self.syncmgr.flag_set(thread.tid, op.flag_id, proceed, data_ready)
                busy = max(0.0, done - now)
                stats.busy += busy
                if obs is not None and busy > 0.0:
                    obs.on_busy(thread.tid, now, busy)
                thread.time = max(now, done)
            elif cls is FlagWait:
                note = getattr(self.memsys, "sync_note", None)
                if note is not None:
                    note(thread.tid, now, SyncPoint("flag_wait", op.flag_id, op.epoch))
                depart = self.syncmgr.flag_wait(thread.tid, op.flag_id, op.epoch, now)
                if depart is None:
                    self._block(thread)
                    return
                wait = max(0.0, depart - now)
                stats.sync_wait += wait
                if obs is not None and wait > 0.0:
                    obs.on_sync_wait(thread.tid, now, wait)
                thread.time = max(now, depart)
            elif cls is SelfInvalidate:
                self.memsys.self_invalidate(thread.tid, op.blocks, now)
                cost = len(op.blocks) * 1.0
                stats.busy += cost
                thread.time = now + cost
                if obs is not None and cost > 0.0:
                    obs.on_busy(thread.tid, now, cost)
            elif cls is Stall:
                if op.category == "read":
                    stats.read_stall += op.cycles
                elif op.category == "write":
                    stats.write_stall += op.cycles
                elif op.category == "flush":
                    stats.buffer_flush += op.cycles
                else:
                    stats.sync_wait += op.cycles
                thread.time = now + op.cycles
                if obs is not None and op.cycles > 0.0:
                    obs.on_stall(thread.tid, now, op.cycles, op.category)
            elif cls is Phase:
                # Zero simulated cycles: purely an observability marker.
                note = getattr(self.memsys, "phase_note", None)
                if note is not None:
                    note(thread.tid, now, op.label)
                if obs is not None:
                    obs.on_phase(thread.tid, now, op.label)
            else:
                raise TypeError(f"thread {thread.tid} yielded non-Op {op!r}")
            if thread.feedback is None:
                thread.feedback = (thread.time, None)
            # Horizon must be re-read every iteration: a release/barrier
            # above may have woken a thread at an *earlier* time than our
            # clock, and running past it would issue operations out of
            # global time order.
            if self._heap and thread.time > self._heap[0][0]:
                self._push(thread)
                return

    def _block(self, thread: _Thread) -> None:
        thread.blocked = True
        thread.block_time = thread.time

    def _charge(self, stats: ProcStats, thread: _Thread, now: float, res: AccessResult) -> None:
        """Advance the thread clock and bucket the elapsed cycles."""
        elapsed = res.time - now
        if elapsed < -1e-9:
            raise RuntimeError(
                f"memory system returned completion {res.time} before issue {now}"
            )
        stalls = res.read_stall + res.write_stall + res.buffer_flush
        stats.read_stall += res.read_stall
        stats.write_stall += res.write_stall
        stats.buffer_flush += res.buffer_flush
        # Whatever the stall categories do not claim is pipeline/busy time
        # (e.g. the one-cycle cache-hit cost).
        busy = max(0.0, elapsed - stalls)
        stats.busy += busy
        thread.time = res.time
        obs = self.observer
        if obs is not None and elapsed > 0.0:
            obs.on_access(
                thread.tid, now, res.time,
                res.read_stall, res.write_stall, res.buffer_flush, busy,
            )
