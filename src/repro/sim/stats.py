"""Per-processor and machine-wide statistics.

The decomposition follows the paper: execution time on each processor is
busy time plus *read stall*, *write stall*, *buffer flush* (the three
memory-system overhead categories) plus synchronisation wait (inherent
process-coordination cost, not a memory-system overhead).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class ProcStats:
    """Cycle and event counters for one simulated processor."""

    busy: float = 0.0
    read_stall: float = 0.0
    write_stall: float = 0.0
    buffer_flush: float = 0.0
    sync_wait: float = 0.0

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    acquires: int = 0
    releases: int = 0
    barriers: int = 0
    fences: int = 0
    finish_time: float = 0.0

    @property
    def overhead(self) -> float:
        """Total memory-system overhead cycles on this processor."""
        return self.read_stall + self.write_stall + self.buffer_flush

    @property
    def accounted(self) -> float:
        """Cycles accounted to any category (excludes end-of-run idle)."""
        return self.busy + self.overhead + self.sync_wait


@dataclass
class SimResult:
    """Result of one simulation run."""

    total_time: float
    procs: list[ProcStats]
    network_messages: int = 0
    network_bytes: int = 0
    network_busy_cycles: float = 0.0
    #: Operations the engine executed (every yielded :class:`Op`).
    ops: int = 0

    @property
    def nprocs(self) -> int:
        return len(self.procs)

    def _mean(self, attr: str) -> float:
        return sum(getattr(p, attr) for p in self.procs) / len(self.procs)

    @property
    def mean_busy(self) -> float:
        return self._mean("busy")

    @property
    def mean_read_stall(self) -> float:
        return self._mean("read_stall")

    @property
    def mean_write_stall(self) -> float:
        return self._mean("write_stall")

    @property
    def mean_buffer_flush(self) -> float:
        return self._mean("buffer_flush")

    @property
    def mean_sync_wait(self) -> float:
        return self._mean("sync_wait")

    @property
    def mean_overhead(self) -> float:
        return self._mean("read_stall") + self._mean("write_stall") + self._mean("buffer_flush")

    @property
    def overhead_pct(self) -> float:
        """Mean memory-system overhead as % of total execution time.

        This is the number printed on top of each bar in Figures 2-5.
        """
        if self.total_time == 0:
            return 0.0
        return 100.0 * self.mean_overhead / self.total_time

    @property
    def total_reads(self) -> int:
        return sum(p.reads for p in self.procs)

    @property
    def total_writes(self) -> int:
        return sum(p.writes for p in self.procs)

    @property
    def total_read_misses(self) -> int:
        return sum(p.read_misses for p in self.procs)

    @property
    def total_acquires(self) -> int:
        return sum(p.acquires for p in self.procs)

    @property
    def total_releases(self) -> int:
        return sum(p.releases for p in self.procs)

    @property
    def total_barriers(self) -> int:
        return sum(p.barriers for p in self.procs)

    @property
    def total_fences(self) -> int:
        return sum(p.fences for p in self.procs)

    def sync_counts(self) -> dict[str, int]:
        """Machine-wide synchronisation operation counts by kind."""
        return {
            "acquires": self.total_acquires,
            "releases": self.total_releases,
            "barriers": self.total_barriers,
            "fences": self.total_fences,
        }


@dataclass(frozen=True)
class SyncPoint:
    """Identity of the synchronisation operation behind a memory-system call.

    The engine attaches one of these to every ``acquire``/``release`` it
    forwards to the memory system (and to the zero-cost ``sync_note``
    hook for flag operations) so that a trace can attribute the event to
    a concrete sync object: which lock, which barrier episode, which
    flag epoch.  ``kind`` is one of ``"lock"``, ``"barrier"``,
    ``"flag_set"``, ``"flag_wait"`` or ``"fence"``; ``episode`` counts
    completed grants/episodes/epochs of that object at the time of the
    operation (see :mod:`repro.analysis.checkers.races` for how the
    happens-before relation is rebuilt from these tags).
    """

    kind: str
    sync_id: int
    episode: int = 0


class AccessResult:  # lint: hot
    """Outcome of a single memory-system access.

    ``time`` is the absolute completion time; the stall fields say how the
    cycles between issue and completion should be categorised (anything
    not claimed by a stall category is busy/latency charged as busy).

    Hand-written slotted class rather than a dataclass: one of these is
    built for (almost) every shared access, so construction cost is part
    of the simulator's per-event floor.  ``extra`` defaults to ``None``
    instead of a fresh dict — no current producer populates it, and the
    allocation showed up in profiles.  Memory systems may reuse a single
    instance for stall-free hits (see ``BaseMemorySystem._hit``);
    consumers must therefore read the fields before the next access on
    the same system, or copy (the engine copies for ``ReadNB``).
    """

    __slots__ = ("time", "read_stall", "write_stall", "buffer_flush", "hit", "extra")

    def __init__(
        self,
        time: float,
        read_stall: float = 0.0,
        write_stall: float = 0.0,
        buffer_flush: float = 0.0,
        hit: bool = False,
        extra: dict | None = None,
    ):
        self.time = time
        self.read_stall = read_stall
        self.write_stall = write_stall
        self.buffer_flush = buffer_flush
        self.hit = hit
        self.extra = extra

    def __repr__(self) -> str:
        return (
            f"AccessResult(time={self.time!r}, read_stall={self.read_stall!r}, "
            f"write_stall={self.write_stall!r}, buffer_flush={self.buffer_flush!r}, "
            f"hit={self.hit!r}, extra={self.extra!r})"
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AccessResult:
            return NotImplemented
        return (
            self.time == other.time
            and self.read_stall == other.read_stall
            and self.write_stall == other.write_stall
            and self.buffer_flush == other.buffer_flush
            and self.hit == other.hit
            and self.extra == other.extra
        )
