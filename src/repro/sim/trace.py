"""Optional access tracing.

Wrap any memory system in :class:`TracingMemory` to record every shared
access with its timing and stall decomposition — the moral equivalent of
SPASM's event logs.  Useful for debugging protocol models and for
explaining where an application's overhead comes from.

    machine = Machine(cfg, "RCinv")
    trace = TracingMemory.attach(machine)
    machine.run(worker)
    hot = trace.hottest_blocks(5)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .stats import AccessResult, SyncPoint


@dataclass(slots=True)
class TraceEvent:  # lint: hot
    """One traced memory-system operation.

    For synchronisation operations the ``sync_*`` fields identify the
    object involved: ``sync_kind`` is ``"lock"``, ``"barrier"``,
    ``"flag_set"``, ``"flag_wait"`` or ``"fence"``; ``sync_id`` is the
    object's id within its kind; ``episode`` is the grant/episode/epoch
    counter of that object at the time of the operation.  They are
    ``None`` for plain data accesses.
    """

    kind: str  # "read" | "write" | "acquire" | "release" | "flag_set" | "flag_wait" | "phase"
    proc: int
    addr: int | None
    issue: float
    complete: float
    read_stall: float
    write_stall: float
    buffer_flush: float
    hit: bool
    sync_kind: str | None = None
    sync_id: int | None = None
    episode: int | None = None
    #: Phase-marker label (``kind == "phase"`` only).
    label: str | None = None

    @property
    def latency(self) -> float:
        return self.complete - self.issue


class TracingMemory:
    """Decorates a memory system, recording every call.

    ``max_events`` bounds memory use; older events are dropped (the
    counters keep full totals).
    """

    #: Single source of truth for the event-buffer bound; ``__init__``
    #: and :meth:`attach` both default to it (``max_events=None``), so
    #: changing it cannot leave the two constructors disagreeing.
    DEFAULT_MAX_EVENTS = 100_000

    def __init__(self, inner, max_events: int | None = None, shm=None):
        if max_events is None:
            max_events = self.DEFAULT_MAX_EVENTS
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.inner = inner
        self.max_events = max_events
        # line_size is constant per system; bind once to keep the
        # per-access path off the delegation chain.
        self._line_size = inner.line_size
        #: Optional :class:`repro.runtime.sharedmem.SharedMemory`; when
        #: set, block rankings resolve block numbers to array names.
        self.shm = shm
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._block_stall: Counter[int] = Counter()
        self._block_access: Counter[int] = Counter()

    # -- construction ---------------------------------------------------
    @classmethod
    def attach(cls, machine, max_events: int | None = None) -> TracingMemory:
        """Interpose a tracer between a Machine's engine and memory.

        Wraps whatever the engine currently dispatches to, so tracers
        compose with other decorators (e.g. a ``CheckedMemorySystem``
        attached first keeps auditing underneath the tracer).
        """
        tracer = cls(machine.engine.memsys, max_events, shm=getattr(machine, "shm", None))
        machine.engine.memsys = tracer
        return tracer

    # -- memory-system protocol ------------------------------------------
    def _record(
        self,
        kind: str,
        proc: int,
        addr: int | None,
        issue: float,
        res: AccessResult,
        sync: SyncPoint | None = None,
    ) -> AccessResult:
        events = self.events
        if len(events) < self.max_events:
            if sync is None:
                events.append(
                    TraceEvent(
                        kind, proc, addr, issue, res.time,
                        res.read_stall, res.write_stall, res.buffer_flush, res.hit,
                    )
                )
            else:
                events.append(
                    TraceEvent(
                        kind, proc, addr, issue, res.time,
                        res.read_stall, res.write_stall, res.buffer_flush, res.hit,
                        sync.kind, sync.sync_id, sync.episode,
                    )
                )
        else:
            self.dropped += 1
        if addr is not None:
            block = addr // self._line_size
            self._block_access[block] += 1
            stall = res.read_stall + res.write_stall
            if stall:
                self._block_stall[block] += stall
        return res

    def _data_access(self, kind: str, proc: int, addr: int, now: float, res: AccessResult):
        # Inlined hot path: read/write dominate event volume, so they
        # skip _record's sync plumbing entirely.
        events = self.events
        if len(events) < self.max_events:
            events.append(
                TraceEvent(
                    kind, proc, addr, now, res.time,
                    res.read_stall, res.write_stall, res.buffer_flush, res.hit,
                )
            )
        else:
            self.dropped += 1
        block = addr // self._line_size
        self._block_access[block] += 1
        stall = res.read_stall + res.write_stall
        if stall:
            self._block_stall[block] += stall
        return res

    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        return self._data_access("read", proc, addr, now, self.inner.read(proc, addr, now))

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        return self._data_access("write", proc, addr, now, self.inner.write(proc, addr, now))

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        return self._record(
            "acquire", proc, None, now, self.inner.acquire(proc, now, sync=sync), sync=sync
        )

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        return self._record(
            "release", proc, None, now, self.inner.release(proc, now, sync=sync), sync=sync
        )

    def sync_note(self, proc: int, now: float, sync: SyncPoint) -> None:
        """Record a zero-cost synchronisation event (flag set/wait)."""
        self.inner.sync_note(proc, now, sync)
        self._record(sync.kind, proc, None, now, AccessResult(time=now, hit=True), sync=sync)

    def phase_note(self, proc: int, now: float, label: str) -> None:
        """Record a zero-cost application phase marker."""
        self.inner.phase_note(proc, now, label)
        if len(self.events) < self.max_events:
            self.events.append(
                TraceEvent(
                    kind="phase", proc=proc, addr=None, issue=now, complete=now,
                    read_stall=0.0, write_stall=0.0, buffer_flush=0.0, hit=True,
                    label=label,
                )
            )
        else:
            self.dropped += 1

    def __getattr__(self, name: str):
        # Delegate everything else (traffic_summary, caches, ...) inward.
        return getattr(self.inner, name)

    # -- analysis ---------------------------------------------------------
    def block_name(self, block: int) -> str:
        """Resolve a block number to the shared array(s) it covers.

        Same attribution the race detector uses: the block's byte span is
        intersected with every :class:`SharedArray` allocation.  Falls
        back to ``"block:<n>"`` when no shared memory is attached or the
        block covers allocator padding only.
        """
        if self.shm is None:
            return f"block:{block}"
        line = self._line_size
        lo, hi = block * line, (block + 1) * line
        parts = []
        for arr in self.shm.arrays:
            word = arr._word
            base, end = arr.base, arr.base + arr.n * word
            if lo < end and hi > base:
                e0 = max(0, (lo - base) // word)
                e1 = min(arr.n, (hi - base + word - 1) // word)
                name = arr.name or f"@0x{arr.base:x}"
                parts.append(f"{name}[{e0}:{e1}]" if arr.n > 1 else name)
        return "+".join(parts) if parts else f"block:{block}"

    def hottest_blocks(self, n: int = 10) -> list[tuple[str, float]]:
        """Blocks ranked by accumulated stall cycles, named by array."""
        return [(self.block_name(b), v) for b, v in self._block_stall.most_common(n)]

    def busiest_blocks(self, n: int = 10) -> list[tuple[str, int]]:
        """Blocks ranked by access count, named by array."""
        return [(self.block_name(b), v) for b, v in self._block_access.most_common(n)]

    #: Export-facing alias pairing with :meth:`hottest_blocks` (the JSON
    #: sidecar keys are ``hottest_blocks`` / ``hottest_accessed``).
    hottest_accessed = busiest_blocks

    def events_for_proc(self, proc: int) -> list[TraceEvent]:
        return [e for e in self.events if e.proc == proc]

    def summary(self) -> dict[str, float]:
        kinds: Counter[str] = Counter(e.kind for e in self.events)
        reads = [e for e in self.events if e.kind == "read"]
        writes = [e for e in self.events if e.kind == "write"]
        out: dict[str, float] = {
            "events": len(self.events) + self.dropped,
            "recorded": len(self.events),
            "reads": len(reads),
            "writes": len(writes),
            "read_miss_rate": (
                sum(1 for e in reads if not e.hit) / len(reads) if reads else 0.0
            ),
            "write_miss_rate": (
                sum(1 for e in writes if not e.hit) / len(writes) if writes else 0.0
            ),
            "total_stall": sum(
                e.read_stall + e.write_stall + e.buffer_flush for e in self.events
            ),
        }
        for kind, count in sorted(kinds.items()):
            out[f"events_{kind}"] = count
        return out
