"""Optional access tracing.

Wrap any memory system in :class:`TracingMemory` to record every shared
access with its timing and stall decomposition — the moral equivalent of
SPASM's event logs.  Useful for debugging protocol models and for
explaining where an application's overhead comes from.

    machine = Machine(cfg, "RCinv")
    trace = TracingMemory.attach(machine)
    machine.run(worker)
    hot = trace.hottest_blocks(5)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .stats import AccessResult, SyncPoint


@dataclass
class TraceEvent:
    """One traced memory-system operation.

    For synchronisation operations the ``sync_*`` fields identify the
    object involved: ``sync_kind`` is ``"lock"``, ``"barrier"``,
    ``"flag_set"``, ``"flag_wait"`` or ``"fence"``; ``sync_id`` is the
    object's id within its kind; ``episode`` is the grant/episode/epoch
    counter of that object at the time of the operation.  They are
    ``None`` for plain data accesses.
    """

    kind: str  # "read" | "write" | "acquire" | "release" | "flag_set" | "flag_wait"
    proc: int
    addr: int | None
    issue: float
    complete: float
    read_stall: float
    write_stall: float
    buffer_flush: float
    hit: bool
    sync_kind: str | None = None
    sync_id: int | None = None
    episode: int | None = None

    @property
    def latency(self) -> float:
        return self.complete - self.issue


class TracingMemory:
    """Decorates a memory system, recording every call.

    ``max_events`` bounds memory use; older events are dropped (the
    counters keep full totals).
    """

    def __init__(self, inner, max_events: int = 100_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.inner = inner
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._block_stall: Counter[int] = Counter()
        self._block_access: Counter[int] = Counter()

    # -- construction ---------------------------------------------------
    @classmethod
    def attach(cls, machine, max_events: int = 100_000) -> TracingMemory:
        """Interpose a tracer between a Machine's engine and memory.

        Wraps whatever the engine currently dispatches to, so tracers
        compose with other decorators (e.g. a ``CheckedMemorySystem``
        attached first keeps auditing underneath the tracer).
        """
        tracer = cls(machine.engine.memsys, max_events)
        machine.engine.memsys = tracer
        return tracer

    # -- memory-system protocol ------------------------------------------
    def _record(
        self,
        kind: str,
        proc: int,
        addr: int | None,
        issue: float,
        res: AccessResult,
        sync: SyncPoint | None = None,
    ) -> AccessResult:
        if len(self.events) < self.max_events:
            self.events.append(
                TraceEvent(
                    kind=kind,
                    proc=proc,
                    addr=addr,
                    issue=issue,
                    complete=res.time,
                    read_stall=res.read_stall,
                    write_stall=res.write_stall,
                    buffer_flush=res.buffer_flush,
                    hit=res.hit,
                    sync_kind=sync.kind if sync is not None else None,
                    sync_id=sync.sync_id if sync is not None else None,
                    episode=sync.episode if sync is not None else None,
                )
            )
        else:
            self.dropped += 1
        if addr is not None:
            block = addr // self.inner.line_size
            self._block_access[block] += 1
            stall = res.read_stall + res.write_stall
            if stall:
                self._block_stall[block] += stall
        return res

    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        return self._record("read", proc, addr, now, self.inner.read(proc, addr, now))

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        return self._record("write", proc, addr, now, self.inner.write(proc, addr, now))

    def acquire(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        return self._record(
            "acquire", proc, None, now, self.inner.acquire(proc, now, sync=sync), sync=sync
        )

    def release(self, proc: int, now: float, sync: SyncPoint | None = None) -> AccessResult:
        return self._record(
            "release", proc, None, now, self.inner.release(proc, now, sync=sync), sync=sync
        )

    def sync_note(self, proc: int, now: float, sync: SyncPoint) -> None:
        """Record a zero-cost synchronisation event (flag set/wait)."""
        self.inner.sync_note(proc, now, sync)
        self._record(sync.kind, proc, None, now, AccessResult(time=now, hit=True), sync=sync)

    def __getattr__(self, name: str):
        # Delegate everything else (traffic_summary, caches, ...) inward.
        return getattr(self.inner, name)

    # -- analysis ---------------------------------------------------------
    def hottest_blocks(self, n: int = 10) -> list[tuple[int, float]]:
        """Blocks ranked by accumulated stall cycles."""
        return self._block_stall.most_common(n)

    def busiest_blocks(self, n: int = 10) -> list[tuple[int, int]]:
        """Blocks ranked by access count."""
        return self._block_access.most_common(n)

    def events_for_proc(self, proc: int) -> list[TraceEvent]:
        return [e for e in self.events if e.proc == proc]

    def summary(self) -> dict[str, float]:
        reads = [e for e in self.events if e.kind == "read"]
        return {
            "events": len(self.events) + self.dropped,
            "recorded": len(self.events),
            "reads": len(reads),
            "read_miss_rate": (
                sum(1 for e in reads if not e.hit) / len(reads) if reads else 0.0
            ),
            "total_stall": sum(
                e.read_stall + e.write_stall + e.buffer_flush for e in self.events
            ),
        }
