"""Plain-heapq reference scheduler — the engine's differential oracle.

The seed engine scheduled threads with a single global ``heapq`` keyed by
``(time, seq, tid)``; the production :class:`repro.sim.engine.Engine`
replaced that with an :class:`repro.sim.wheel.EventWheel`, a fused
run-ahead op loop, and a flyweight fast path for stall-free hits — all
proved bit-identical against the golden fixture the seed engine recorded
(``tests/fixtures/engine_golden.json``).

:class:`ReferenceEngine` retains the seed structure as a first-class
oracle: one straight-line op loop, a global heap, no fusions, no
flyweight shortcut, no gc fiddling.  It must stay *structurally* simple
and *numerically* exact — every float operation appears in the same
order as the production engine so results agree bit-for-bit, which is
what ``repro fuzz`` (and the equivalence tests) rely on.  Keep the two
in lockstep: any intentional timing change lands in both, plus a golden
regeneration with a commit message explaining why the timing moved.

Equivalence notes (why this simpler loop is bit-identical):

* Heap order: the wheel preserves exact ``(time, seq, tid)`` order and
  assigns ``seq`` at push; with identical scheduling decisions both
  engines push in the same order, so sequence numbers — and therefore
  tie-breaks — coincide.
* Run-ahead: the production loop refreshes its cached horizon only
  after sync ops.  Mid-segment the heap minimum can only change via a
  push from a wake, and wakes only happen inside sync ops, so
  recomputing the horizon from ``heap[0]`` after *every* op (done here)
  selects the same thread switches.
* Flyweight: the production fast path charges ``busy = rt - now`` when
  the result *is* the memory system's stall-free ``_hit_result``; with
  all stall fields 0.0 the general decomposition used here computes the
  same bits (``x - 0.0 == x`` and ``x + 0.0 == x`` for the non-negative
  accumulators involved).

This module also hosts the observable-outcome capture that the golden
fixture and the fuzz harness share (:data:`PROC_FIELDS`,
:func:`capture_outcome`, :func:`run_case`), so neither imports from
``tests/``.
"""

from __future__ import annotations

from collections.abc import Generator, Iterable
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from ..config import MachineConfig
from .engine import DeadlockError
from .events import (
    Acquire,
    BarrierWait,
    Compute,
    Fence,
    FlagSet,
    FlagWait,
    Op,
    Phase,
    Read,
    ReadNB,
    Release,
    SelfInvalidate,
    Stall,
    Write,
)
from .stats import AccessResult, ProcStats, SimResult, SyncPoint

if TYPE_CHECKING:
    from ..apps.factory import AppFactory
    from ..runtime.context import Machine

_INF = float("inf")


class _Thread:
    __slots__ = (
        "tid", "gen", "time", "stats", "blocked", "block_time", "done", "feedback",
    )

    def __init__(self, tid: int, gen: Generator[Op, None, None]):
        self.tid = tid
        self.gen = gen
        self.time = 0.0
        self.stats = ProcStats()
        self.blocked = False
        self.block_time = 0.0
        self.done = False
        self.feedback: float | tuple[float, object] | None = None


class ReferenceEngine:
    """Seed-structure scheduler, drop-in for :class:`repro.sim.engine.Engine`.

    Same construction signature and the same public surface the rest of
    the runtime touches (``spawn``/``spawn_all``/``wake``/``run``,
    ``memsys``/``observer``), so :func:`use_reference_engine` can swap it
    into a built :class:`repro.runtime.context.Machine` before apps are
    spawned.  Host self-profiling is a production-engine feature; setting
    ``profiler`` here raises at :meth:`run`.
    """

    def __init__(self, config, memsys, syncmgr, max_ops: int | None = None):
        self.config = config
        self.memsys = memsys
        self.syncmgr = syncmgr
        self.max_ops = max_ops
        self.observer = None
        self.profiler = None
        deg = config.degradation
        self._degrade = deg if deg is not None and deg.affects_cpu else None
        self._threads: dict[int, _Thread] = {}
        #: Global ready heap of ``(time, seq, tid)`` — the seed layout.
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._ops_executed = 0
        self._lock_episode = getattr(syncmgr, "lock_episode", lambda _lock_id: 0)
        self._barrier_episode = getattr(syncmgr, "barrier_episode", lambda _barrier_id: 0)
        self._flag_epoch = getattr(syncmgr, "flag_epoch", lambda _flag_id: 0)
        syncmgr.bind(self)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def spawn(self, tid: int, gen: Generator[Op, None, None]) -> None:
        if tid in self._threads:
            raise ValueError(f"thread {tid} already spawned")
        if not 0 <= tid < self.config.nprocs:
            raise ValueError(
                f"thread id {tid} outside processor range 0..{self.config.nprocs - 1}"
            )
        thread = _Thread(tid, gen)
        self._threads[tid] = thread
        self._push(thread)

    def spawn_all(self, gens: Iterable[Generator[Op, None, None]]) -> None:
        for tid, gen in enumerate(gens):
            self.spawn(tid, gen)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        """Number of pending ready-queue entries (observability probe)."""
        return len(self._heap)

    def _push(self, thread: _Thread) -> None:
        seq = self._seq + 1
        self._seq = seq
        heappush(self._heap, (thread.time, seq, thread.tid))

    def wake(self, tid: int, grant_time: float) -> None:
        thread = self._threads[tid]
        if not thread.blocked:
            raise RuntimeError(f"wake() on non-blocked thread {tid}")
        thread.blocked = False
        wait = max(0.0, grant_time - thread.block_time)
        thread.stats.sync_wait += wait
        obs = self.observer
        if obs is not None and wait > 0.0:
            obs.on_sync_wait(tid, thread.block_time, wait)
        thread.time = max(thread.time, grant_time)
        self._push(thread)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Run all threads to completion and return the statistics."""
        if self.profiler is not None:
            raise RuntimeError(
                "the reference engine does not support host self-profiling; "
                "attach the profiler to the production engine instead"
            )
        heap = self._heap
        threads = self._threads
        while heap:
            time, _seq, tid = heappop(heap)
            thread = threads[tid]
            if thread.done or thread.blocked or thread.time != time:
                # stale heap entry (thread was re-pushed or woken)
                continue
            self._run_thread(thread)
        blocked = [th.tid for th in threads.values() if th.blocked]
        unfinished = [th.tid for th in threads.values() if not th.done]
        if blocked:
            raise DeadlockError(
                f"simulation deadlocked: threads {blocked} blocked, "
                f"threads {unfinished} unfinished"
            )
        total = max((th.stats.finish_time for th in threads.values()), default=0.0)
        procs = [threads[tid].stats for tid in sorted(threads)]
        return SimResult(total_time=total, procs=procs, ops=self._ops_executed)

    def _run_thread(self, thread: _Thread) -> None:
        """One scheduling segment: run ``thread`` until it blocks,
        finishes, or its clock passes the earliest pending heap entry."""
        heap = self._heap
        memsys = self.memsys
        syncmgr = self.syncmgr
        obs = self.observer
        ops_limit = self.max_ops if self.max_ops is not None else _INF
        lock_episode = self._lock_episode
        barrier_episode = self._barrier_episode
        flag_epoch = self._flag_epoch
        deg = self._degrade
        if deg is not None:
            cpu_f = deg.cpu_factors(self.config.nprocs)
            burst_period = deg.burst_period
            burst_len = burst_period * deg.burst_duty
            burst_factor = deg.burst_factor
            burst_phase = deg.burst_phase
        else:
            cpu_f = []
            burst_period = burst_len = burst_phase = 0.0
            burst_factor = 1.0
        tid = thread.tid
        send = thread.gen.send
        stats = thread.stats
        t = thread.time
        fb = thread.feedback
        while True:
            try:
                op = send(fb)
            except StopIteration:
                thread.done = True
                thread.time = t
                stats.finish_time = t
                return
            self._ops_executed += 1
            if self._ops_executed > ops_limit:
                raise RuntimeError(
                    f"operation budget exceeded ({self.max_ops}); "
                    "likely runaway application loop"
                )
            cls = op.__class__
            now = t
            fb = None
            if cls is Read:
                res = memsys.read(tid, op.addr, now)
                stats.reads += 1
                if res.hit:
                    stats.read_hits += 1
                else:
                    stats.read_misses += 1
                t = self._charge(stats, tid, now, res)
            elif cls is Compute:
                cycles = op.cycles
                if deg is not None:
                    f = cpu_f[tid]
                    if (
                        burst_period > 0.0
                        and (now + tid * burst_phase) % burst_period < burst_len
                    ):
                        f *= burst_factor
                    cycles = cycles * f
                stats.busy += cycles
                t = now + cycles
                if obs is not None and cycles > 0.0:
                    obs.on_busy(tid, now, cycles)
            elif cls is Write:
                res = memsys.write(tid, op.addr, now)
                stats.writes += 1
                t = self._charge(stats, tid, now, res)
            elif cls is Acquire:
                sync = SyncPoint("lock", op.lock_id, lock_episode(op.lock_id))
                res = memsys.acquire(tid, now, sync)
                t = self._charge(stats, tid, now, res)
                stats.acquires += 1
                grant = syncmgr.acquire(tid, op.lock_id, t)
                if grant is None:
                    thread.blocked = True
                    thread.block_time = t
                    thread.time = t
                    thread.feedback = None
                    return
                wait = grant - t
                if wait > 0.0:
                    stats.sync_wait += wait
                    if obs is not None:
                        obs.on_sync_wait(tid, t, wait)
                    t = grant
            elif cls is Release:
                sync = SyncPoint("lock", op.lock_id, lock_episode(op.lock_id))
                res = memsys.release(tid, now, sync)
                t = self._charge(stats, tid, now, res)
                stats.releases += 1
                done = syncmgr.release(tid, op.lock_id, t)
                wait = done - t
                if wait > 0.0:
                    stats.sync_wait += wait
                    if obs is not None:
                        obs.on_sync_wait(tid, t, wait)
                    t = done
            elif cls is BarrierWait:
                sync = SyncPoint(
                    "barrier", op.barrier_id, barrier_episode(op.barrier_id)
                )
                res = memsys.release(tid, now, sync)
                t = self._charge(stats, tid, now, res)
                stats.barriers += 1
                depart = syncmgr.barrier_wait(tid, op.barrier_id, t)
                if depart is None:
                    thread.blocked = True
                    thread.block_time = t
                    thread.time = t
                    thread.feedback = None
                    return
                wait = depart - t
                if wait > 0.0:
                    stats.sync_wait += wait
                    if obs is not None:
                        obs.on_sync_wait(tid, t, wait)
                    t = depart
            elif cls is Fence:
                res = memsys.release(tid, now, SyncPoint("fence", -1))
                t = self._charge(stats, tid, now, res)
                stats.fences += 1
            elif cls is ReadNB:
                res = memsys.read(tid, op.addr, now)
                stats.reads += 1
                if res.hit:
                    stats.read_hits += 1
                else:
                    stats.read_misses += 1
                issue = self.config.cache_hit_cycles
                stats.busy += issue
                t = now + issue
                if obs is not None and issue > 0.0:
                    obs.on_busy(tid, now, issue)
                # Copy: memory systems may reuse a flyweight result, but
                # this one outlives the call (the app holds it until the
                # value is consumed).
                fb = (
                    t,
                    AccessResult(
                        res.time, res.read_stall, res.write_stall,
                        res.buffer_flush, res.hit,
                    ),
                )
            elif cls is FlagSet:
                note = getattr(memsys, "sync_note", None)
                if note is not None:
                    note(
                        tid,
                        now,
                        SyncPoint("flag_set", op.flag_id, flag_epoch(op.flag_id) + 1),
                    )
                proceed, data_ready = memsys.publish(tid, op.blocks, now)
                done = syncmgr.flag_set(tid, op.flag_id, proceed, data_ready)
                busy = done - now
                if busy > 0.0:
                    stats.busy += busy
                    if obs is not None:
                        obs.on_busy(tid, now, busy)
                    t = done
            elif cls is FlagWait:
                note = getattr(memsys, "sync_note", None)
                if note is not None:
                    note(tid, now, SyncPoint("flag_wait", op.flag_id, op.epoch))
                depart = syncmgr.flag_wait(tid, op.flag_id, op.epoch, now)
                if depart is None:
                    thread.blocked = True
                    thread.block_time = t
                    thread.time = t
                    thread.feedback = None
                    return
                wait = depart - now
                if wait > 0.0:
                    stats.sync_wait += wait
                    if obs is not None:
                        obs.on_sync_wait(tid, now, wait)
                    t = depart
            elif cls is SelfInvalidate:
                memsys.self_invalidate(tid, op.blocks, now)
                cost = len(op.blocks) * 1.0
                stats.busy += cost
                t = now + cost
                if obs is not None and cost > 0.0:
                    obs.on_busy(tid, now, cost)
            elif cls is Stall:
                cycles = op.cycles
                category = op.category
                if category == "read":
                    stats.read_stall += cycles
                elif category == "write":
                    stats.write_stall += cycles
                elif category == "flush":
                    stats.buffer_flush += cycles
                else:
                    stats.sync_wait += cycles
                t = now + cycles
                if obs is not None and cycles > 0.0:
                    obs.on_stall(tid, now, cycles, category)
            elif cls is Phase:
                note = getattr(memsys, "phase_note", None)
                if note is not None:
                    note(tid, now, op.label)
                if obs is not None:
                    obs.on_phase(tid, now, op.label)
            else:
                raise TypeError(f"thread {tid} yielded non-Op {op!r}")
            if fb is None:
                fb = t
            horizon = heap[0][0] if heap else _INF
            if t > horizon:
                thread.time = t
                thread.feedback = fb
                self._push(thread)
                return

    def _charge(self, stats: ProcStats, tid: int, now: float, res: AccessResult) -> float:
        """Bucket the elapsed cycles of an access; return its completion time.

        Identical float operations in identical order to
        ``Engine._charge`` (and to the inlined data-access arithmetic of
        ``Engine.run`` — with a stall-free result ``x - 0.0 == x`` and
        ``max(0.0, x)`` matches the inline ``if busy <= 0.0`` clamp)."""
        elapsed = res.time - now
        if elapsed < -1e-9:
            raise RuntimeError(
                f"memory system returned completion {res.time} before issue {now}"
            )
        stalls = res.read_stall + res.write_stall + res.buffer_flush
        stats.read_stall += res.read_stall
        stats.write_stall += res.write_stall
        stats.buffer_flush += res.buffer_flush
        busy = max(0.0, elapsed - stalls)
        stats.busy += busy
        obs = self.observer
        if obs is not None and elapsed > 0.0:
            obs.on_access(
                tid, now, res.time,
                res.read_stall, res.write_stall, res.buffer_flush, busy,
            )
        return res.time


# ----------------------------------------------------------------------
# machine integration + observable-outcome capture
# ----------------------------------------------------------------------

#: Per-proc counters that must match bit-for-bit across engines.
PROC_FIELDS = (
    "busy", "read_stall", "write_stall", "buffer_flush", "sync_wait",
    "reads", "writes", "read_hits", "read_misses",
    "acquires", "releases", "barriers", "fences", "finish_time",
)

#: Engine variants :func:`run_case` can drive.
ENGINES = ("wheel", "reference")


def use_reference_engine(machine: "Machine") -> ReferenceEngine:
    """Swap ``machine``'s engine for a :class:`ReferenceEngine`.

    Must run before ``app.setup(machine)`` (the engine holds the spawned
    threads).  Construction rebinds the sync manager to the new engine,
    so wakes route to the reference heap.
    """
    old = machine.engine
    ref = ReferenceEngine(old.config, old.memsys, old.syncmgr, max_ops=old.max_ops)
    machine.engine = ref
    return ref


def capture_outcome(machine: "Machine", result: SimResult) -> dict:
    """JSON-able observable outcome of a finished run.

    Everything the engine-equivalence contract pins: total time, op
    count, the full per-processor stall decomposition, network counters,
    traffic counters, and the final shared-memory image.  Floats survive
    the JSON round-trip exactly, so ``==`` on these documents is
    bit-level equality.
    """
    memory = [
        {"name": arr.name, "base": arr.base, "data": arr.snapshot()}
        for arr in machine.shm.arrays
    ]
    return {
        "total_time": result.total_time,
        "ops": result.ops,
        "procs": [
            {field: getattr(p, field) for field in PROC_FIELDS} for p in result.procs
        ],
        "network_messages": result.network_messages,
        "network_bytes": result.network_bytes,
        "traffic": machine.memsys.traffic_summary(),
        "memory": memory,
    }


def run_case(
    factory: "AppFactory",
    system: str,
    verify: bool = True,
    nprocs: int = 16,
    config: MachineConfig | None = None,
    engine: str = "wheel",
    max_ops: int | None = None,
) -> dict:
    """One simulation -> observable outcome, on a chosen engine variant.

    ``engine`` selects the production wheel engine (``"wheel"``) or the
    plain-heapq oracle (``"reference"``); everything else about the
    machine is identical, which is exactly what the differential tests
    and the fuzz harness compare.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    from ..runtime.context import Machine

    app = factory()
    machine = Machine(
        config if config is not None else MachineConfig(nprocs=nprocs),
        system,
        max_ops=max_ops,
    )
    if engine == "reference":
        use_reference_engine(machine)
    app.setup(machine)
    result = machine.run(app.worker)
    if verify:
        app.verify()
    return capture_outcome(machine, result)
