"""Execution-driven discrete-event simulation kernel (SPASM analogue)."""

from .engine import DeadlockError, Engine
from .events import (
    Acquire,
    BarrierWait,
    Compute,
    Fence,
    Op,
    Read,
    ReadNB,
    Release,
    Stall,
    Write,
)
from .stats import AccessResult, ProcStats, SimResult
from .trace import TraceEvent, TracingMemory

__all__ = [
    "AccessResult",
    "Acquire",
    "BarrierWait",
    "Compute",
    "DeadlockError",
    "Engine",
    "Fence",
    "Op",
    "ProcStats",
    "Read",
    "ReadNB",
    "Release",
    "SimResult",
    "Stall",
    "TraceEvent",
    "TracingMemory",
    "Write",
]
