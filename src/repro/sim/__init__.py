"""Execution-driven discrete-event simulation kernel (SPASM analogue)."""

from .engine import DeadlockError, Engine
from .events import (
    Acquire,
    BarrierWait,
    Compute,
    Fence,
    Op,
    Read,
    ReadNB,
    Release,
    Stall,
    Write,
)
from .reference import ReferenceEngine, run_case, use_reference_engine
from .stats import AccessResult, ProcStats, SimResult
from .trace import TraceEvent, TracingMemory

__all__ = [
    "AccessResult",
    "Acquire",
    "BarrierWait",
    "Compute",
    "DeadlockError",
    "Engine",
    "Fence",
    "Op",
    "ProcStats",
    "Read",
    "ReadNB",
    "ReferenceEngine",
    "Release",
    "SimResult",
    "Stall",
    "TraceEvent",
    "TracingMemory",
    "Write",
    "run_case",
    "use_reference_engine",
]
