#!/usr/bin/env python3
"""Architectural-implication sweeps (paper Section 6).

The paper argues that write stall depends on the store-buffer depth and
the network/processor speed ratio, and that the competitive-update
threshold trades read stalls for message traffic.  This example sweeps
all three knobs (plus the interconnect topology) on the Integer Sort
kernel using the :func:`repro.core.sweep` API.

Usage:  python examples/architectural_implications.py
"""

from repro import MachineConfig
from repro.core import sweep
from repro.apps import IntegerSort


def make_app():
    return IntegerSort(n_keys=1024, nbuckets=64)


def main() -> None:
    base = MachineConfig(nprocs=16)

    print(
        sweep(
            make_app, "store_buffer_entries", [1, 2, 4, 8, 16],
            system="RCupd", base_config=base,
        ).format(("mean_write_stall", "mean_buffer_flush", "total_time"))
    )
    print()
    print(
        sweep(
            make_app, "cycles_per_byte", [0.4, 0.8, 1.6, 3.2, 6.4],
            system="RCinv", base_config=base,
        ).format(("mean_read_stall", "overhead_pct", "total_time"))
    )
    print()
    print(
        sweep(
            make_app, "competitive_threshold", [1, 2, 4, 8, 64],
            system="RCcomp", base_config=base,
        ).format(("mean_read_stall", "mean_buffer_flush", "total_time"))
    )
    print()
    print(
        sweep(
            make_app, "topology", ["ring", "mesh", "torus", "hypercube"],
            system="RCinv", base_config=base,
        ).format(("mean_read_stall", "total_time"))
    )


if __name__ == "__main__":
    main()
