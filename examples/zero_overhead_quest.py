#!/usr/bin/env python3
"""The quest itself: driving a real memory system toward zero overhead.

The paper's conclusion charts a path: pick an adaptive/competitive
protocol to tame update traffic, tolerate the remaining read latency,
and decouple data flow from synchronisation to kill buffer flush.  This
example walks that path on a producer-consumer pipeline, step by step,
and measures how much of the gap to the z-machine each step closes.

Usage:  python examples/zero_overhead_quest.py
"""

from repro import MachineConfig
from repro.runtime import Barrier, DataChannel, Machine
from repro.sim.events import Compute

NPROCS = 8
EPOCHS = 6
NWORDS = 64
COMPUTE = 2000.0


def barrier_pipeline(system: str, cfg: MachineConfig):
    machine = Machine(cfg, system)
    data = machine.shm.array(NWORDS, "data", align_line=True)
    bar = Barrier(machine.sync)

    def worker(ctx):
        for e in range(EPOCHS):
            if ctx.pid == 0:
                yield Compute(COMPUTE)
                yield from data.write_range(0, [e * 1000 + i for i in range(NWORDS)])
            yield from bar.wait()
            if ctx.pid != 0:
                vals = yield from data.read_range(0, NWORDS)
                assert vals[0] == e * 1000
                yield Compute(COMPUTE / 4)
            yield from bar.wait()

    return machine.run(worker)


def channel_pipeline(system: str, cfg: MachineConfig):
    machine = Machine(cfg, system)
    chan = DataChannel(machine, nwords=NWORDS, consumers=cfg.nprocs - 1, depth=2)

    def worker(ctx):
        if ctx.pid == 0:
            for e in range(EPOCHS):
                yield Compute(COMPUTE)
                yield from chan.produce([e * 1000 + i for i in range(NWORDS)])
        else:
            reader = chan.reader()
            for e in range(EPOCHS):
                vals = yield from reader.next()
                assert vals[0] == e * 1000
                yield Compute(COMPUTE / 4)

    return machine.run(worker)


def main() -> None:
    cfg = MachineConfig(nprocs=NPROCS)
    steps = [
        ("z-machine (the target)", "z-mc", barrier_pipeline, cfg),
        ("RCinv + barriers", "RCinv", barrier_pipeline, cfg),
        ("RCupd + barriers", "RCupd", barrier_pipeline, cfg),
        ("RCcomp + barriers (adapt traffic)", "RCcomp", barrier_pipeline, cfg),
        ("RCcomp + data-carrying flags", "RCcomp", channel_pipeline, cfg),
        ("RCinv + data-carrying flags", "RCinv", channel_pipeline, cfg),
        ("RCinv + flags + prefetch", "RCinv", channel_pipeline,
         cfg.replace(prefetch_depth=4)),
    ]
    z_total = None
    print(f"{'step':36s} {'total':>9s} {'rs':>8s} {'ws':>7s} {'bf':>8s} {'ovh%':>7s} {'gap':>7s}")
    for label, system, pipeline, c in steps:
        res = pipeline(system, c)
        if z_total is None:
            z_total = res.total_time
        gap = res.total_time / z_total
        print(
            f"{label:36s} {res.total_time:9.0f} {res.mean_read_stall:8.0f} "
            f"{res.mean_write_stall:7.0f} {res.mean_buffer_flush:8.0f} "
            f"{res.overhead_pct:6.2f}% {gap:6.2f}x"
        )
    print(
        "\nEach architectural step from the paper's Section 6 closes part of"
        "\nthe gap to the z-machine; the data-flow/control-flow decoupling"
        "\nremoves the buffer flush entirely."
    )


if __name__ == "__main__":
    main()
