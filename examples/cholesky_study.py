#!/usr/bin/env python3
"""Sparse Cholesky factorisation study (paper Figure 2) + Table 1 row.

Factors a nested-dissection-ordered grid Laplacian with a central work
queue on all five memory systems, verifies the factor against numpy,
and prints the overhead breakdown and the z-machine Table 1 row.

Usage:  python examples/cholesky_study.py [grid_side]
"""

import sys

from repro import MachineConfig, run_study, table1_row
from repro.analysis import format_figure, format_table1
from repro.apps import Cholesky
from repro.workloads import grid_laplacian, symbolic_cholesky


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    cfg = MachineConfig(nprocs=16)
    matrix = grid_laplacian(side, side)
    sym = symbolic_cholesky(matrix)
    print(
        f"Matrix: {matrix.n}x{matrix.n} grid Laplacian, "
        f"{matrix.nnz_lower} non-zeros (lower), {sym.nnz} in the factor, "
        f"{len(sym.supernodes)} supernodes"
    )
    print("(paper: 1086x1086, 30,824 nnz, 110,461 in factor, 506 supernodes)\n")
    factory = lambda: Cholesky(matrix=matrix)  # noqa: E731
    study = run_study(factory, cfg)
    print(format_figure(study, "Cholesky — cf. paper Figure 2"))
    print()
    print(format_table1([table1_row(factory, cfg)]))
    print("\nEvery run verified: simulated parallel factor == numpy.linalg.cholesky.")


if __name__ == "__main__":
    main()
