#!/usr/bin/env python3
"""Latency tolerance: prefetching and multithreading (paper Sections 6-7).

The z-machine result says the read stall seen on RCinv is avoidable in
principle.  This example applies the two techniques the paper proposes
on a miss-bound scan workload and shows how far each closes the gap to
the z-machine.

Usage:  python examples/latency_tolerance.py
"""

from repro import MachineConfig
from repro.runtime import Barrier, Machine, interleave
from repro.sim.events import Compute

NPROCS = 4
WORDS = 256  # shared words per processor


def build(system: str, cfg: MachineConfig, contexts: int):
    machine = Machine(cfg, system)
    total = NPROCS * WORDS
    data = machine.shm.array(total, "data", align_line=True)
    data.poke_many([float(i % 11) for i in range(total)])
    barrier = Barrier(machine.sync)
    per_ctx = WORDS // contexts

    def make_ctx(pid, k):
        def gen():
            base = pid * WORDS + k * per_ctx
            acc = 0.0
            for i in range(base, base + per_ctx):
                acc += yield from data.read(i)
                yield Compute(8)
        return gen()

    def worker(ctx):
        if contexts == 1:
            yield from make_ctx(ctx.pid, 0)
        else:
            yield from interleave(
                [make_ctx(ctx.pid, k) for k in range(contexts)], switch_cost=4.0
            )
        yield from barrier.wait()

    return machine, worker


def main() -> None:
    base = MachineConfig(nprocs=NPROCS)
    rows = [
        ("z-machine (ideal)", "z-mc", base, 1),
        ("RCinv baseline", "RCinv", base, 1),
        ("RCinv + prefetch depth 4", "RCinv", base.replace(prefetch_depth=4), 1),
        ("RCinv + 2 contexts/proc", "RCinv", base, 2),
        ("RCinv + 4 contexts/proc", "RCinv", base, 4),
        ("RCinv + prefetch + 2 ctx", "RCinv", base.replace(prefetch_depth=4), 2),
    ]
    print(f"{'configuration':28s} {'read stall':>12s} {'total':>10s}")
    for label, system, cfg, contexts in rows:
        machine, worker = build(system, cfg, contexts)
        res = machine.run(worker)
        print(f"{label:28s} {res.mean_read_stall:12.1f} {res.total_time:10.1f}")
    print(
        "\nBoth techniques shave the avoidable read stall the z-machine"
        "\nexposes; neither reaches the ideal (and on a saturated network"
        "\nneither helps at all — see benchmarks/test_ablation_multithread)."
    )


if __name__ == "__main__":
    main()
