#!/usr/bin/env python3
"""Writing your own application against the public API.

Implements a classic producer-consumer ping-pong microbenchmark from
scratch — shared arrays, a lock-protected counter and a barrier — and
benchmarks it on every memory system.  This is the template for porting
new workloads onto the simulator.

Usage:  python examples/custom_application.py
"""

from repro import MachineConfig, run_study
from repro.analysis import format_figure
from repro.apps.base import Application
from repro.runtime import Barrier, Lock
from repro.sim.events import Compute


class PingPong(Application):
    """Two processors bounce a cache line; the rest compute locally.

    Migratory sharing is the worst case for update protocols (every
    update is useless to the previous owner) and a good case for the
    competitive protocol's self-invalidation.
    """

    name = "PingPong"

    def __init__(self, rounds: int = 200, compute_cycles: float = 50.0):
        self.rounds = rounds
        self.compute_cycles = compute_cycles

    def setup(self, machine):
        self.ball = machine.shm.array(1, "ball", fill=0, align_line=True)
        self.lock = Lock(machine.sync, name="pp.lock")
        self.barrier = Barrier(machine.sync, name="pp.barrier")
        self.final = 0

    def worker(self, ctx):
        if ctx.pid in (0, 1):
            for _ in range(self.rounds):
                yield from self.lock.acquire()
                v = yield from self.ball.read(0)
                yield Compute(self.compute_cycles)
                yield from self.ball.write(0, v + 1)
                yield from self.lock.release()
        else:
            # Background computation on the other processors.
            for _ in range(self.rounds):
                yield Compute(self.compute_cycles)
        yield from self.barrier.wait()
        if ctx.pid == 0:
            self.final = int(self.ball.peek(0))

    def verify(self):
        expected = 2 * self.rounds
        if self.final != expected:
            raise AssertionError(f"ping-pong count {self.final} != {expected}")


def main() -> None:
    cfg = MachineConfig(nprocs=8)
    study = run_study(lambda: PingPong(), cfg)
    print(format_figure(study, "Ping-pong microbenchmark (migratory sharing)"))
    print(
        "\nMigratory sharing: the updates RCupd sends to the previous owner"
        "\nare pure waste; RCcomp's self-invalidation cuts them off after"
        "\n`competitive_threshold` useless deliveries."
    )


if __name__ == "__main__":
    main()
