#!/usr/bin/env python3
"""Regenerate every figure and table of the paper in one run.

Runs all four applications on all five memory systems (Figures 2-5),
computes Table 1 on the z-machine, and evaluates the paper's
qualitative claims.  Scaled-down inputs by default; pass ``--paper``
for paper-scale inputs (much slower: execution-driven simulation in
Python).

Independent runs go through the parallel/caching layer
(docs/performance.md): ``--jobs N`` fans each study out over N worker
processes (0 = one per CPU) and repeated invocations reuse the on-disk
result cache unless ``--no-cache`` is given.

Usage:  python examples/full_paper_run.py [--paper] [--jobs N] [--no-cache]
"""

import sys
import time

from repro import MachineConfig, ResultCache, run_study, table1_row
from repro.analysis import format_claims, format_figure, format_table1, standard_claims
from repro.apps import default_scale, paper_scale


def factories(paper: bool):
    return paper_scale() if paper else default_scale()


def main() -> None:
    paper = "--paper" in sys.argv
    jobs = int(sys.argv[sys.argv.index("--jobs") + 1]) if "--jobs" in sys.argv else 1
    cache = None if "--no-cache" in sys.argv else ResultCache.default()
    cfg = MachineConfig(nprocs=16)
    figure_no = {"Cholesky": 2, "IS": 3, "Maxflow": 4, "Nbody": 5}
    rows = []
    for name, (factory, reuse) in factories(paper).items():
        t0 = time.time()
        study = run_study(factory, cfg, jobs=jobs, cache=cache)
        print(format_figure(study, f"{name} — cf. paper Figure {figure_no[name]}"))
        print()
        print(format_claims(standard_claims(study, expect_reuse=reuse)))
        print(f"(simulated in {time.time() - t0:.1f}s wall time)\n")
        rows.append(table1_row(factory, cfg))
    print(format_table1(rows))


if __name__ == "__main__":
    main()
