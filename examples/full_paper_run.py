#!/usr/bin/env python3
"""Regenerate every figure and table of the paper in one run.

Runs all four applications on all five memory systems (Figures 2-5),
computes Table 1 on the z-machine, and evaluates the paper's
qualitative claims.  Scaled-down inputs by default; pass ``--paper``
for paper-scale inputs (much slower: execution-driven simulation in
Python).

Independent runs go through the parallel/caching layer
(docs/performance.md): ``--jobs N`` fans each study out over N worker
processes (0 = one per CPU) and repeated invocations reuse the on-disk
result cache unless ``--no-cache`` is given.

Output goes through the structured logger (docs/observability.md):
``--json`` emits machine-readable records, ``--quiet`` drops the
per-study diagnostics.  A run manifest describing every study (config,
host, code fingerprint, events/sec, cache hits) is written next to the
output as a sidecar (default ``full_paper_run_manifest.json``,
``--manifest PATH`` to move it) — this is the provenance record for
committed artifacts such as ``benchmarks/paper_scale_output.txt``.

Usage:  python examples/full_paper_run.py [--paper] [--jobs N]
        [--no-cache] [--json] [--quiet] [--manifest PATH]
"""

import sys
import time

from repro import MachineConfig, ResultCache, run_study, table1_row
from repro.analysis import format_claims, format_figure, format_table1, standard_claims
from repro.apps import default_scale, paper_scale
from repro.obs import build_manifest, configure, write_manifest


def factories(paper: bool):
    return paper_scale() if paper else default_scale()


def main() -> None:
    paper = "--paper" in sys.argv
    jobs = int(sys.argv[sys.argv.index("--jobs") + 1]) if "--jobs" in sys.argv else 1
    cache = None if "--no-cache" in sys.argv else ResultCache.default()
    manifest_path = (
        sys.argv[sys.argv.index("--manifest") + 1]
        if "--manifest" in sys.argv
        else "full_paper_run_manifest.json"
    )
    log = configure(
        verbose="--verbose" in sys.argv,
        quiet="--quiet" in sys.argv,
        json_mode="--json" in sys.argv,
    )
    cfg = MachineConfig(nprocs=16)
    figure_no = {"Cholesky": 2, "IS": 3, "Maxflow": 4, "Nbody": 5}
    rows = []
    study_manifests = []
    wall_start = time.time()
    for name, (factory, reuse) in factories(paper).items():
        t0 = time.time()
        study = run_study(factory, cfg, jobs=jobs, cache=cache)
        study_manifests.append(study.manifest)
        log.out(format_figure(study, f"{name} — cf. paper Figure {figure_no[name]}"))
        log.out()
        log.out(format_claims(standard_claims(study, expect_reuse=reuse)))
        log.info(f"{name} simulated in {time.time() - t0:.1f}s wall time")
        log.out()
        rows.append(table1_row(factory, cfg))
    log.out(format_table1(rows))
    manifest = build_manifest(
        "paper-run",
        config=cfg,
        app=",".join(figure_no),
        wall_seconds=time.time() - wall_start,
        extra={
            "scale": "paper" if paper else "default",
            "jobs": jobs,
            "cached": cache is not None,
            "studies": study_manifests,
        },
    )
    write_manifest(manifest_path, manifest)
    log.info(f"run manifest written to {manifest_path}")


if __name__ == "__main__":
    main()
