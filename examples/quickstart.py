#!/usr/bin/env python3
"""Quickstart: benchmark one application against the z-machine ideal.

Runs the NAS Integer Sort kernel on the z-machine and the four
release-consistent memory systems of the paper, prints the
execution-time breakdown (Figure 3 style) and checks the paper's
qualitative claims.

Usage:  python examples/quickstart.py [nprocs]
"""

import sys

from repro import MachineConfig, run_study
from repro.analysis import format_claims, format_figure, standard_claims
from repro.apps import IntegerSort


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    cfg = MachineConfig(nprocs=nprocs)
    print(f"Simulating a {nprocs}-node CC-NUMA machine "
          f"({cfg.mesh_dims[0]}x{cfg.mesh_dims[1]} mesh, "
          f"{cfg.cycles_per_byte} cycles/byte)\n")
    study = run_study(lambda: IntegerSort(n_keys=1024, nbuckets=64), cfg)
    print(format_figure(study, "Integer Sort (IS) — cf. paper Figure 3"))
    print()
    print("Paper claims:")
    print(format_claims(standard_claims(study, expect_reuse=False)))


if __name__ == "__main__":
    main()
