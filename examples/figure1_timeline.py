#!/usr/bin/env python3
"""Figure 1 reconstruction: inherent communication cost vs overhead.

Processor 1 writes a value; processor 2 reads it within the link latency
L (it *must* pay the inherent communication cost), processor 0 reads it
long afterwards (no inherent cost — anything it waits is pure memory-
system overhead).  On the z-machine the late read is free; on real
systems it stalls.

Usage:  python examples/figure1_timeline.py
"""

from repro import MachineConfig, figure1_scenario


def main() -> None:
    cfg = MachineConfig(nprocs=4)
    print("Figure 1 scenario: P1 writes X; P2 reads X after 2 cycles; "
          "P0 reads X after 500 cycles.\n")
    header = f"{'system':8s} {'L':>6s} {'early stall':>12s} {'class':>10s} {'late stall':>12s} {'class':>10s}"
    print(header)
    print("-" * len(header))
    for system in ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv"):
        t = figure1_scenario(system, cfg)
        print(
            f"{t.system:8s} {t.link_latency:6.1f} "
            f"{t.early_read.stall:12.1f} {t.early_kind:>10s} "
            f"{t.late_read.stall:12.1f} {t.late_kind:>10s}"
        )
    print(
        "\nOn the z-machine only the early read pays (the inherent cost,"
        "\nbounded by L); the late read is fully overlapped.  Real memory"
        "\nsystems add protocol overhead to both."
    )


if __name__ == "__main__":
    main()
