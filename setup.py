"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks a vendored wheel backend
(legacy editable installs go through this file).
"""

from setuptools import setup

setup()
