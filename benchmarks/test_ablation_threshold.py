"""Ablation: competitive-update threshold (RCcomp design knob).

Low thresholds cut useless update traffic aggressively (invalidate-like:
fewer messages, more read misses); high thresholds approach pure update
(RCupd).  At threshold -> infinity RCcomp must converge to RCupd.
"""

from conftest import PAPER_CFG, run_once

from repro.apps import Maxflow
from repro.apps.base import run_machine

THRESHOLDS = (1, 2, 4, 8, 10_000)


def test_ablation_competitive_threshold(benchmark):
    def sweep():
        out = {}
        for th in THRESHOLDS:
            cfg = PAPER_CFG.replace(competitive_threshold=th)
            machine, res = run_machine(
                Maxflow(n=32, extra_edges=64, seed=0), "RCcomp", cfg
            )
            out[th] = (
                res.mean_read_stall,
                machine.memsys.updates_sent,
                machine.memsys.self_invalidations,
            )
        # pure-update reference point
        machine, res = run_machine(Maxflow(n=32, extra_edges=64, seed=0), "RCupd", PAPER_CFG)
        out["RCupd"] = (res.mean_read_stall, machine.memsys.updates_sent, 0)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"{'threshold':>10s} {'read stall':>12s} {'updates':>9s} {'self-inv':>9s}")
    for th, (rs, upd, si) in results.items():
        print(f"{str(th):>10s} {rs:12.1f} {upd:9d} {si:9d}")

    # lower thresholds self-invalidate more and send fewer updates
    assert results[1][2] >= results[8][2]
    assert results[1][1] <= results[8][1]
    # a huge threshold behaves exactly like RCupd
    assert results[10_000][2] == 0
    assert results[10_000][1] == results["RCupd"][1]
