"""Figure 1: inherent communication cost vs overhead (didactic scenario).

Reconstructs the three-processor timeline of the paper's Figure 1 on
every memory system and checks the classification: an early read pays
at most the inherent cost L on the z-machine; a late read is free on
the z-machine but stalls (pure overhead) on every real system.
"""

from conftest import PAPER_CFG, run_once

from repro import figure1_scenario


def test_fig1_timeline(benchmark):
    def run_all():
        return {
            system: figure1_scenario(system, PAPER_CFG)
            for system in ("z-mc", "RCinv", "RCupd", "RCadapt", "RCcomp", "SCinv")
        }

    results = run_once(benchmark, run_all)
    print()
    print(f"{'system':8s} {'early stall':>12s} {'class':>10s} {'late stall':>12s} {'class':>10s}")
    for system, t in results.items():
        print(
            f"{system:8s} {t.early_read.stall:12.1f} {t.early_kind:>10s} "
            f"{t.late_read.stall:12.1f} {t.late_kind:>10s}"
        )

    z = results["z-mc"]
    assert z.early_kind == "inherent"
    assert z.early_read.stall <= z.link_latency + 1e-9
    assert z.late_kind == "hidden"
    for system, t in results.items():
        if system == "z-mc":
            continue
        assert t.late_kind == "overhead"
        assert t.late_read.stall > 0
