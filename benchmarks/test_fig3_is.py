"""Figure 3: Integer Sort execution-time breakdown.

Paper: 32K keys / 1K buckets; large overheads on every real system
(the kernel is communication-dominated), read stall RCinv ~ RCupd
(cold misses dominate — no reuse), z-machine ~0%.
"""

from conftest import PAPER_APPS, paper_study, run_once

from repro.analysis import format_figure


def test_fig3_is(benchmark):
    factory, _ = PAPER_APPS["IS"]
    study = run_once(benchmark, lambda: paper_study(factory))
    print()
    print(format_figure(study, "Figure 3: IS (32K keys, 1K buckets)"))

    assert study.zmachine.overhead_pct < 1.0
    inv = study.by_system("RCinv")
    # IS is the most overhead-heavy RCinv app: read stall dominant & large
    assert inv.overhead_pct > 30.0
    assert inv.read_stall > inv.write_stall and inv.read_stall > inv.buffer_flush
    # no significant reuse: the RCinv/RCupd read-stall gap stays small
    rs_upd = study.by_system("RCupd").read_stall
    assert inv.read_stall < 3.0 * rs_upd
