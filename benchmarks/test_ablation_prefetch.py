"""Ablation: sequential prefetch on RCinv (paper Section 6 suggestion).

"Applications in which there is considerable cold miss penalty ...
prefetching and/or multithreading are more promising options."  But the
paper also notes (citing Gupta et al.) that "no one technique is
universally applicable": this bench shows both sides —

* a sequential scan, where next-block prefetch hides most cold misses;
* IS, whose strided histogram exchange makes next-block prefetch pure
  pollution (read stall *increases*).
"""

from conftest import PAPER_CFG, run_once

from repro.apps import IntegerSort
from repro.apps.base import Application, run_machine
from repro.runtime import Barrier
from repro.sim.events import Compute

DEPTHS = (0, 1, 2, 4)


class SequentialScan(Application):
    """Every processor sums a contiguous slice of a large shared array."""

    name = "Scan"

    def __init__(self, words_per_proc: int = 256):
        self.words_per_proc = words_per_proc
        self.totals: dict[int, float] = {}

    def setup(self, machine):
        n = self.words_per_proc * machine.config.nprocs
        self.data = machine.shm.array(n, "scan.data", align_line=True)
        self.data.poke_many([float(i % 17) for i in range(n)])
        self.barrier = Barrier(machine.sync, name="scan.barrier")

    def worker(self, ctx):
        lo = ctx.pid * self.words_per_proc
        total = 0.0
        for i in range(lo, lo + self.words_per_proc):
            total += yield from self.data.read(i)
            yield Compute(4)
        self.totals[ctx.pid] = total
        yield from self.barrier.wait()

    def verify(self):
        for pid, total in self.totals.items():
            lo = pid * self.words_per_proc
            want = sum(self.data.peek(i) for i in range(lo, lo + self.words_per_proc))
            assert total == want


def _sweep(app_factory):
    out = {}
    for depth in DEPTHS:
        cfg = PAPER_CFG.replace(prefetch_depth=depth)
        machine, res = run_machine(app_factory(), "RCinv", cfg)
        out[depth] = (
            res.mean_read_stall,
            machine.memsys.prefetches_issued,
            res.total_time,
        )
    return out


def test_ablation_prefetch(benchmark):
    def sweep_both():
        return {
            "scan": _sweep(lambda: SequentialScan(256)),
            "IS": _sweep(lambda: IntegerSort(n_keys=1024, nbuckets=64)),
        }

    results = run_once(benchmark, sweep_both)
    print()
    for app, sweep in results.items():
        print(f"{app}:")
        print(f"{'depth':>6s} {'read stall':>12s} {'prefetches':>11s} {'total':>12s}")
        for depth, (rs, pf, total) in sweep.items():
            print(f"{depth:6d} {rs:12.1f} {pf:11d} {total:12.1f}")

    scan = results["scan"]
    assert scan[0][1] == 0 and scan[2][1] > 0
    # sequential access: a deep enough prefetch window (depth >= latency /
    # per-line consumption time) hides a good part of the cold misses
    assert scan[4][0] < 0.8 * scan[0][0]
    assert scan[4][2] < scan[0][2]
    # IS's strided exchange: naive prefetch does NOT help (pollution) —
    # "no one technique is universally applicable"
    is_sweep = results["IS"]
    assert is_sweep[2][0] > 0.9 * is_sweep[0][0]
