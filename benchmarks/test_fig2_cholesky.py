"""Figure 2: Cholesky execution-time breakdown across memory systems.

Paper: overheads 0% (z-mc) / ~31.2% (RCinv) / ~28.9% (RCupd) /
~26.9% (RCadapt) / ~25.9% (RCcomp) on a 1086x1086 sparse matrix; read
stall similar between RCinv and RCupd (little reuse; queue-driven
dynamic pattern).
"""

from conftest import PAPER_APPS, paper_study, run_once

from repro.analysis import format_figure


def test_fig2_cholesky(benchmark):
    factory, _ = PAPER_APPS["Cholesky"]
    study = run_once(benchmark, lambda: paper_study(factory))
    print()
    print(format_figure(study, "Figure 2: Cholesky (paper-scale matrix)"))

    z = study.zmachine
    assert z.overhead_pct < 1.0  # inherent communication fully overlapped
    for s in study.systems:
        if s.system != "z-mc":
            assert 5.0 < s.overhead_pct < 50.0  # paper: 25.9-31.2 %
    # Cholesky shows little reuse: RCupd read stall is NOT far below RCinv
    # (the paper even notes update-protocol cold misses can be *higher*
    # due to contention from update traffic)
    rs_inv = study.by_system("RCinv").read_stall
    rs_upd = study.by_system("RCupd").read_stall
    assert rs_inv < 4.0 * rs_upd
    # merge-buffer systems pay more buffer flush than RCinv
    assert study.by_system("RCupd").buffer_flush > study.by_system("RCinv").buffer_flush
