"""Figure 5: Barnes-Hut execution-time breakdown.

Paper: 128 bodies, 50 steps, sharing boost every 10 steps; the
best-behaved application (overheads 3-6%): well-defined gradually
changing producer-consumer pattern with strong reuse, so update-based
protocols nearly eliminate read stall (see EXPERIMENTS.md for the one
deviation: our replicated-tree broadcast writes more shared data per
step than the paper's implementation, which inflates the update
systems' flush component).
"""

from conftest import PAPER_APPS, paper_study, run_once

from repro.analysis import format_figure


def test_fig5_barneshut(benchmark):
    factory, _ = PAPER_APPS["Nbody"]
    study = run_once(benchmark, lambda: paper_study(factory))
    print()
    print(format_figure(study, "Figure 5: Barnes-Hut (128 bodies, 50 steps)"))

    assert study.zmachine.overhead_pct < 1.0
    inv = study.by_system("RCinv")
    assert inv.overhead_pct < 30.0
    # the paper's ordering: the update-based systems beat RCinv on BH
    for name in ("RCupd", "RCcomp", "RCadapt"):
        assert study.by_system(name).overhead_pct < inv.overhead_pct
    # strong reuse: update protocol slashes read stall vs invalidate
    rs_upd = study.by_system("RCupd").read_stall
    assert inv.read_stall > 1.5 * rs_upd
    # RCinv's overhead is almost entirely read stall
    assert inv.read_stall > 5 * (inv.write_stall + 1)
