"""Figure 4: Maxflow execution-time breakdown.

Paper: 200-vertex/400-edge graph; random migratory sharing, computation
per datum small.  Update protocols suffer their largest buffer-flush
penalties here; RCcomp/RCadapt read stall sits between RCupd's and
RCinv's because the pattern defeats the established-sharer heuristics.
"""

from conftest import PAPER_APPS, paper_study, run_once

from repro.analysis import format_figure


def test_fig4_maxflow(benchmark):
    factory, _ = PAPER_APPS["Maxflow"]
    study = run_once(benchmark, lambda: paper_study(factory))
    print()
    print(format_figure(study, "Figure 4: Maxflow (200 vertices, 400 edges)"))

    assert study.zmachine.overhead_pct < 1.0
    # data reuse exists (vertex data revisited): RCupd cuts read stall
    rs_inv = study.by_system("RCinv").read_stall
    rs_upd = study.by_system("RCupd").read_stall
    assert rs_inv > 1.4 * rs_upd
    # update-based systems pay heavy flushes at the frequent lock releases
    bf_inv = study.by_system("RCinv").buffer_flush
    for name in ("RCupd", "RCcomp", "RCadapt"):
        assert study.by_system(name).buffer_flush > 0.9 * bf_inv
    # adaptive/competitive read stall lies between RCupd's and RCinv's
    for name in ("RCcomp", "RCadapt"):
        rs = study.by_system(name).read_stall
        assert rs >= rs_upd * 0.9
        assert rs <= rs_inv * 1.1
