"""Ablation: processor-count scaling.

The paper's scalability context (SPASM was built for scalability
studies): the z-machine speeds up with more processors while the real
systems' overheads grow with sharing degree.
"""

from conftest import run_once

from repro import MachineConfig
from repro.apps import IntegerSort
from repro.apps.base import run_on

PROCS = (2, 4, 8, 16, 32)


def test_ablation_processor_scaling(benchmark):
    def sweep():
        out = {}
        for p in PROCS:
            cfg = MachineConfig(nprocs=p)
            app = IntegerSort(n_keys=2048, nbuckets=128)
            z = run_on(app, "z-mc", cfg)
            inv = run_on(IntegerSort(n_keys=2048, nbuckets=128), "RCinv", cfg)
            out[p] = (z.total_time, inv.total_time, inv.overhead_pct)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"{'procs':>6s} {'z-mc total':>12s} {'RCinv total':>12s} {'RCinv ovh%':>11s}")
    for p, (zt, it, pct) in results.items():
        print(f"{p:6d} {zt:12.1f} {it:12.1f} {pct:10.2f}%")

    # the z-machine keeps scaling: 32 procs beat 2 procs comfortably
    assert results[32][0] < results[2][0]
    # overhead fraction grows with processor count on the real system
    assert results[16][2] > results[2][2]
    # RCinv is always slower than the ideal machine
    for p in PROCS:
        assert results[p][1] > results[p][0]
