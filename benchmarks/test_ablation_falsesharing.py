"""Ablation: false sharing (line size effects).

The z-machine uses 4-byte lines precisely so that "the only
communication that occurs is due to true sharing in the application";
the real systems' 32-byte lines add false sharing.  This bench puts one
per-processor counter on a shared line vs. one per cache line and
measures the invalidation ping-pong the packed layout causes on RCinv.
"""

from conftest import PAPER_CFG, run_once

from repro.apps.base import Application, run_machine
from repro.runtime import Barrier
from repro.sim.events import Compute

UPDATES = 30  # increments per processor


class CounterArray(Application):
    """Every processor repeatedly increments its own counter.

    No true sharing at all — any communication is pure false sharing.
    """

    name = "Counters"

    def __init__(self, padded: bool):
        self.padded = padded

    def setup(self, machine):
        p = machine.config.nprocs
        words_per_line = machine.config.words_per_line
        stride = words_per_line if self.padded else 1
        self.stride = stride
        self.counters = machine.shm.array(p * stride, "counters", align_line=True)
        self.barrier = Barrier(machine.sync)

    def worker(self, ctx):
        slot = ctx.pid * self.stride
        for _ in range(UPDATES):
            v = yield from self.counters.read(slot)
            yield from self.counters.write(slot, v + 1)
            yield Compute(20)
        yield from self.barrier.wait()

    def verify(self):
        for pid in range(self.counters.n // self.stride):
            assert self.counters.peek(pid * self.stride) == UPDATES


def test_ablation_false_sharing(benchmark):
    def sweep():
        out = {}
        for padded in (False, True):
            machine, res = run_machine(CounterArray(padded), "RCinv", PAPER_CFG)
            out[padded] = (
                res.mean_read_stall,
                res.mean_write_stall + res.mean_buffer_flush,
                machine.memsys.invalidations_sent,
                res.total_time,
            )
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"{'layout':>8s} {'read stall':>12s} {'wr+flush':>10s} {'invals':>8s} {'total':>12s}")
    for padded, (rs, wf, inv, total) in results.items():
        label = "padded" if padded else "packed"
        print(f"{label:>8s} {rs:12.1f} {wf:10.1f} {inv:8d} {total:12.1f}")

    packed, padded = results[False], results[True]
    # padding eliminates the invalidation ping-pong entirely...
    assert padded[2] == 0
    assert packed[2] > 0
    # ...and with it the read stall and total time
    assert padded[0] < 0.2 * packed[0] + 1.0
    assert padded[3] < packed[3]
