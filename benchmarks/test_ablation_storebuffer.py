"""Ablation: store-buffer depth vs write stall (paper Section 6).

"Write stall time is dependent on two parameters: the store buffer size
and the relative speed of the network... Increasing the write buffer
size could potentially increase the buffer flush time."
"""

from conftest import PAPER_CFG, run_once

from repro.apps import IntegerSort
from repro.apps.base import run_on

DEPTHS = (1, 2, 4, 8, 16)


def test_ablation_store_buffer_depth(benchmark):
    def sweep():
        out = {}
        for depth in DEPTHS:
            cfg = PAPER_CFG.replace(store_buffer_entries=depth)
            res = run_on(IntegerSort(n_keys=1024, nbuckets=64), "RCupd", cfg)
            out[depth] = (res.mean_write_stall, res.mean_buffer_flush, res.total_time)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"{'depth':>6s} {'write stall':>12s} {'buf flush':>12s} {'total':>12s}")
    for depth, (ws, bf, total) in results.items():
        print(f"{depth:6d} {ws:12.1f} {bf:12.1f} {total:12.1f}")

    # deeper buffers monotonically reduce write stall (more room to hide)
    ws = [results[d][0] for d in DEPTHS]
    assert ws[0] >= ws[-1]
    assert ws[0] > 0  # a 1-entry buffer must stall
    # and the deepest buffer never beats the shallowest on flush time
    bf = [results[d][1] for d in DEPTHS]
    assert bf[-1] >= bf[0] * 0.5  # flush does not vanish with depth
