"""Ablation: decoupling data flow from synchronisation (paper Section 6).

The paper's proposed path to a zero-overhead machine: "use
synchronization only for control flow and use a different mechanism for
data flow ... associating data with synchronization in order to carry
out smart self-invalidations when needed at the consumer instead of
stalling at the producer."

This bench runs the same producer-consumer pipeline two ways on each
memory system: conventional barrier synchronisation (the producer
flushes its write buffers at every release) versus the
:class:`DataChannel` primitive (fire-and-forget publication +
consumer-side self-invalidation).  Decoupling must drive the producer's
buffer-flush time to zero and reduce total time on the merge-buffered
systems, approaching z-machine behaviour.
"""

from conftest import PAPER_CFG, run_once

from repro.runtime import Barrier, DataChannel, Machine
from repro.sim.events import Compute

EPOCHS = 6
NWORDS = 64
COMPUTE = 2000.0


def barrier_pipeline(system):
    machine = Machine(PAPER_CFG, system)
    data = machine.shm.array(NWORDS, "data", align_line=True)
    bar = Barrier(machine.sync)

    def worker(ctx):
        for e in range(EPOCHS):
            if ctx.pid == 0:
                yield Compute(COMPUTE)
                yield from data.write_range(0, [e * 1000 + i for i in range(NWORDS)])
            yield from bar.wait()
            if ctx.pid != 0:
                vals = yield from data.read_range(0, NWORDS)
                assert vals[0] == e * 1000
                yield Compute(COMPUTE / 4)
            yield from bar.wait()

    return machine.run(worker)


def channel_pipeline(system):
    machine = Machine(PAPER_CFG, system)
    chan = DataChannel(
        machine, nwords=NWORDS, consumers=PAPER_CFG.nprocs - 1, depth=2
    )

    def worker(ctx):
        if ctx.pid == 0:
            for e in range(EPOCHS):
                yield Compute(COMPUTE)
                yield from chan.produce([e * 1000 + i for i in range(NWORDS)])
        else:
            reader = chan.reader()
            for e in range(EPOCHS):
                vals = yield from reader.next()
                assert vals[0] == e * 1000
                yield Compute(COMPUTE / 4)

    return machine.run(worker)


def test_ablation_data_sync_decoupling(benchmark):
    def sweep():
        out = {}
        for system in ("z-mc", "RCinv", "RCupd", "RCcomp"):
            b = barrier_pipeline(system)
            c = channel_pipeline(system)
            out[system] = (
                b.procs[0].buffer_flush,
                c.procs[0].buffer_flush,
                b.total_time,
                c.total_time,
            )
        return out

    results = run_once(benchmark, sweep)
    print()
    print(
        f"{'system':8s} {'flush(barrier)':>15s} {'flush(channel)':>15s} "
        f"{'total(barrier)':>15s} {'total(channel)':>15s}"
    )
    for system, (bf_b, bf_c, t_b, t_c) in results.items():
        print(f"{system:8s} {bf_b:15.1f} {bf_c:15.1f} {t_b:15.1f} {t_c:15.1f}")

    for system, (bf_b, bf_c, t_b, t_c) in results.items():
        # decoupling eliminates the producer's buffer-flush entirely
        assert bf_c == 0.0, system
        if system in ("RCupd", "RCcomp"):
            assert bf_b > 0.0  # the merge buffer forced flushes before
            assert t_c < t_b  # and the decoupled version is faster
