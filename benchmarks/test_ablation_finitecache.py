"""Ablation: finite caches (paper Section 7 open issue).

"There are several open issues to be explored including the effect of
finite caches on the overheads."  Finite caches add capacity misses —
communication the z-machine (infinite cache) never pays — so read stall
must grow monotonically as the cache shrinks.
"""

from conftest import PAPER_CFG, run_once

from repro.apps import Cholesky
from repro.apps.base import run_machine

#: cache sizes in lines; None = infinite (paper default)
SIZES = (2, 4, 16, None)


def test_ablation_finite_cache(benchmark):
    def sweep():
        out = {}
        for lines in SIZES:
            cfg = PAPER_CFG.replace(cache_lines=lines)
            machine, res = run_machine(Cholesky(grid=(8, 8)), "RCinv", cfg)
            evictions = sum(c.evictions for c in machine.memsys.caches)
            out[lines] = (res.mean_read_stall, evictions, res.total_time)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"{'lines':>8s} {'read stall':>12s} {'evictions':>10s} {'total':>12s}")
    for lines, (rs, ev, total) in results.items():
        label = "inf" if lines is None else str(lines)
        print(f"{label:>8s} {rs:12.1f} {ev:10d} {total:12.1f}")

    # infinite cache never evicts; tiny caches evict heavily
    assert results[None][1] == 0
    assert results[2][1] > results[16][1] > 0
    # capacity misses add read stall over the infinite-cache baseline
    assert results[2][0] > results[None][0]
