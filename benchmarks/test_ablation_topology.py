"""Ablation: interconnect topology.

The SPASM kernel "provides a choice of network topologies"; the paper's
experiments use the 2-D mesh.  This bench runs IS on a mesh, torus,
ring and hypercube at equal link speed: richer topologies (shorter
routes, more bisection bandwidth) must reduce read stall, with the ring
worst and the hypercube best.
"""

from conftest import PAPER_CFG, run_once

from repro.apps import IntegerSort
from repro.apps.base import run_on

TOPOLOGIES = ("ring", "mesh", "torus", "hypercube")


def test_ablation_topology(benchmark):
    def sweep():
        out = {}
        for topo in TOPOLOGIES:
            cfg = PAPER_CFG.replace(topology=topo)
            res = run_on(IntegerSort(n_keys=1024, nbuckets=64), "RCinv", cfg)
            out[topo] = (res.mean_read_stall, res.total_time, res.overhead_pct)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"{'topology':>10s} {'read stall':>12s} {'total':>12s} {'ovh %':>8s}")
    for topo, (rs, total, pct) in results.items():
        print(f"{topo:>10s} {rs:12.1f} {total:12.1f} {pct:7.2f}%")

    # the ring (highest average distance) is the slowest
    assert results["ring"][1] >= max(
        results[t][1] for t in ("mesh", "torus", "hypercube")
    )
    # the hypercube (log-distance, high bisection) beats the mesh
    assert results["hypercube"][0] < results["mesh"][0]
    # the torus never loses to the mesh (its routes are never longer)
    assert results["torus"][1] <= results["mesh"][1] * 1.02
