"""Ablation: multithreading for latency tolerance (paper Sections 6-7).

"There are several open issues to be explored including ... the use of
other architectural enhancements such as multithreading and prefetching
to lower the overheads."  A switch-on-miss multithreaded processor runs
several contexts per node, hiding one context's miss latency under
another's computation.

The sweep covers both regimes the latency-tolerance literature
identifies: on a lightly loaded machine (4 processors) multithreading
hides most of the read stall; on the fully populated 16-processor mesh
the same workload is bandwidth-bound — extra contexts only deepen the
network queues, so the gains evaporate.  (Multithreading tolerates
latency, not bandwidth.)
"""

from conftest import run_once

from repro import MachineConfig
from repro.runtime import Barrier, Machine, interleave
from repro.sim.events import Compute

CONTEXTS = (1, 2, 4)
WORK_WORDS = 256  # shared words scanned per processor (split across contexts)


def run_mt(contexts_per_proc: int, nprocs: int):
    cfg = MachineConfig(nprocs=nprocs)
    machine = Machine(cfg, "RCinv")
    words_per_ctx = WORK_WORDS // contexts_per_proc
    total = nprocs * WORK_WORDS
    data = machine.shm.array(total, "data", align_line=True)
    data.poke_many([float(i % 7) for i in range(total)])
    barrier = Barrier(machine.sync)

    def make_ctx(pid, k):
        def gen():
            base = pid * WORK_WORDS + k * words_per_ctx
            acc = 0.0
            for i in range(base, base + words_per_ctx):
                acc += yield from data.read(i)
                yield Compute(8)
        return gen()

    def worker(ctx):
        bodies = [make_ctx(ctx.pid, k) for k in range(contexts_per_proc)]
        yield from interleave(bodies, switch_cost=4.0)
        yield from barrier.wait()

    res = machine.run(worker)
    return res.mean_read_stall, res.total_time


def test_ablation_multithreading(benchmark):
    def sweep():
        return {
            nprocs: {c: run_mt(c, nprocs) for c in CONTEXTS}
            for nprocs in (4, 16)
        }

    results = run_once(benchmark, sweep)
    print()
    for nprocs, per_ctx in results.items():
        print(f"{nprocs} processors:")
        print(f"{'contexts':>9s} {'read stall':>12s} {'total':>12s}")
        for c, (rs, total) in per_ctx.items():
            print(f"{c:9d} {rs:12.1f} {total:12.1f}")

    light = results[4]
    # latency-bound regime: extra contexts hide a good share of read stall
    assert light[2][0] < 0.8 * light[1][0]
    assert light[2][1] < light[1][1]
    assert light[4][0] < light[1][0]
    # bandwidth-bound regime: multithreading cannot manufacture bandwidth,
    # so the relative gains collapse (ratio far above the light regime's)
    heavy = results[16]
    assert heavy[2][0] > 0.8 * heavy[1][0]
