"""Table 1: inherent communication and observed costs on the z-machine.

Paper: shared-write counts per application, the writes as a small
percentage of execution time, and observed (unhidden) communication
cost ≈ 0 cycles — the basis of the claim that z-machine performance
matches a PRAM.
"""

from conftest import PAPER_APPS, paper_table1, run_once

from repro.analysis import format_table1


def test_table1(benchmark):
    factories = {name: f for name, (f, _) in PAPER_APPS.items()}
    rows = run_once(benchmark, lambda: paper_table1(factories))
    print()
    print(format_table1(rows))

    assert len(rows) == 4
    for row in rows:
        assert row.shared_writes > 0
        # writes are a minority of execution time (the paper's scaled-up
        # inputs put this at 0.002-3.8%; our reduced inputs have a higher
        # write density — see EXPERIMENTS.md)
        assert row.write_pct < 80.0
        # the observed (unhidden) cost is essentially zero — the headline
        # (paper: 0.0 to 54.6 cycles of multi-million-cycle runs)
        assert row.observed_cost <= 0.02 * row.total_time
    # Cholesky writes the most shared data (factor columns), as in the paper
    by_app = {r.app: r for r in rows}
    assert by_app["Cholesky"].shared_writes > by_app["Nbody"].shared_writes
