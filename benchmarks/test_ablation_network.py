"""Ablation: network speed vs overheads (paper Section 6).

"Write stall time is dependent on ... the relative speed of the network
with respect to the processor. Improving either of these two parameters
will help to lower the write stall time."  A faster network (fewer
cycles per byte) must shrink every overhead component.
"""

from conftest import PAPER_CFG, run_once

from repro.apps import IntegerSort
from repro.apps.base import run_on

SPEEDS = (0.4, 0.8, 1.6, 3.2, 6.4)  # cycles per byte; paper default 1.6


def test_ablation_network_speed(benchmark):
    def sweep():
        out = {}
        for cpb in SPEEDS:
            cfg = PAPER_CFG.replace(cycles_per_byte=cpb)
            res = run_on(IntegerSort(n_keys=1024, nbuckets=64), "RCinv", cfg)
            out[cpb] = (res.mean_read_stall, res.overhead_pct, res.total_time)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"{'cyc/byte':>9s} {'read stall':>12s} {'ovh %':>8s} {'total':>12s}")
    for cpb, (rs, pct, total) in results.items():
        print(f"{cpb:9.1f} {rs:12.1f} {pct:7.2f}% {total:12.1f}")

    # slower links monotonically increase read stall and total time
    rs = [results[s][0] for s in SPEEDS]
    totals = [results[s][2] for s in SPEEDS]
    assert all(a <= b * 1.02 for a, b in zip(rs, rs[1:]))
    assert all(a <= b * 1.02 for a, b in zip(totals, totals[1:]))
    # a 4x faster network than the paper's cuts overhead % substantially
    assert results[0.4][1] < results[1.6][1]
