"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures: it runs the
study under ``pytest-benchmark`` timing, prints the regenerated rows,
and asserts the qualitative shape the paper reports (see EXPERIMENTS.md
for the paper-vs-measured record).

The figure/table benches route their runs through the parallel
execution layer (``repro.core.parallel``).  Two environment variables
control it:

* ``REPRO_JOBS`` — worker processes per study (default ``1``: serial,
  in-process, exactly the pre-parallel-layer behavior; ``0`` = one per
  CPU);
* ``REPRO_CACHE`` — set to ``1`` to reuse the on-disk result cache
  across bench invocations (default off so timings stay honest).
"""

from __future__ import annotations

import os

import pytest

from repro import MachineConfig, run_study, table1
from repro.apps import paper_scale
from repro.core.parallel import ResultCache

#: The paper's machine: 16 processors, 4x4 mesh, 1.6 cycles/byte.
PAPER_CFG = MachineConfig(nprocs=16)

#: Application factories at the paper's input sizes (Section 5).
PAPER_APPS = paper_scale()

#: Worker processes per study (see module docstring).
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

#: Shared on-disk result cache, or None when REPRO_CACHE is unset.
CACHE = ResultCache.default() if os.environ.get("REPRO_CACHE") == "1" else None


@pytest.fixture
def paper_cfg() -> MachineConfig:
    return PAPER_CFG


def paper_study(factory, config: MachineConfig = PAPER_CFG):
    """Run one figure study through the parallel/caching layer."""
    return run_study(factory, config, jobs=JOBS, cache=CACHE)


def paper_table1(factories, config: MachineConfig = PAPER_CFG):
    """Run Table 1 through the parallel/caching layer."""
    return table1(factories, config, jobs=JOBS, cache=CACHE)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation runs are deterministic, so one round is sufficient and
    keeps the full harness fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
