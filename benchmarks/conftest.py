"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures: it runs the
study under ``pytest-benchmark`` timing, prints the regenerated rows,
and asserts the qualitative shape the paper reports (see EXPERIMENTS.md
for the paper-vs-measured record).
"""

from __future__ import annotations

import pytest

from repro import MachineConfig
from repro.apps import paper_scale

#: The paper's machine: 16 processors, 4x4 mesh, 1.6 cycles/byte.
PAPER_CFG = MachineConfig(nprocs=16)

#: Application factories at the paper's input sizes (Section 5).
PAPER_APPS = paper_scale()


@pytest.fixture
def paper_cfg() -> MachineConfig:
    return PAPER_CFG


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation runs are deterministic, so one round is sufficient and
    keeps the full harness fast.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
